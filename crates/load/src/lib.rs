//! Closed-loop fleet load generator for the WideLeak ecosystem.
//!
//! Drives N virtual devices × M concurrent playback workers through the
//! `ThreadedBinder` transport on the shared virtual clock. Every run is
//! deterministic for
//! a given [`LoadConfig`]: service times are modeled from the seed (not
//! wall time), percentiles are computed exactly from the full sample
//! set, and the warm-up phase absorbs every cold cache miss on the main
//! thread before the concurrent workers start — so cache hit/miss
//! counters come out identical run to run regardless of interleaving.
//!
//! The generator exercises the three hot-path caches end to end:
//! repeated plays hit the license-response cache, periodic device
//! check-ins ([`OttApp::reprovision`]) hit the provisioning-certificate
//! cache, and repeated sample decrypts hit the per-session derived-key
//! cache in the CDM. With [`CacheConfig::none`] the same traffic runs
//! the full cold paths, which is what `benches/license_path.rs` and the
//! caches-off byte-identity tests compare against.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use wideleak_android_drm::binder::{DrmCall, DrmReply};
use wideleak_android_drm::netserver::TcpDrmServer;
use wideleak_android_drm::wire::{
    decode_frame_full, encode_frame_full, frame_len, FrameBody, HEADER_LEN,
};
use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
use wideleak_device::catalog::DeviceModel;
use wideleak_faults::{det_hash, VirtualClock};
use wideleak_ott::adapt::AdaptConfig;
use wideleak_ott::apps::OttApp;
use wideleak_ott::bandwidth::{BandwidthConfig, BandwidthSchedule, ClientLink};
use wideleak_ott::cache::{CacheConfig, CacheStats};
use wideleak_ott::ecosystem::{DeviceStack, Ecosystem, EcosystemConfig};

pub use wideleak_android_drm::binder::TransportKind;
pub use wideleak_cdm::oemcrypto::DecryptCacheStats;

/// Apps that stream on a discontinued L3 device (no revocation
/// enforcement), cycled across the fleet's devices.
const FLEET_APPS: &[&str] = &["netflix", "hulu", "mycanal", "showtime", "ocs", "salto"];

/// The two demo titles workers alternate between.
const FLEET_TITLES: &[&str] = &["title-001", "title-002"];

/// Modeled service time of a play that runs the full cold path (ms).
const COLD_BASE_MS: u64 = 42;
/// Modeled service time of a play served from warm caches (ms).
const WARM_BASE_MS: u64 = 11;
/// Seeded jitter added on top of either base (exclusive upper bound, ms).
const JITTER_MS: u64 = 9;
/// Worker-index sentinel for warm-up plays in the latency salt.
const WARMUP_WORKER: usize = 0xFFFF;

/// Arrival discipline of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Each worker issues its next play as soon as the previous one
    /// finishes.
    Closed,
    /// Each worker waits a fixed virtual interarrival gap before every
    /// play.
    Open {
        /// Virtual milliseconds between a worker's consecutive plays.
        interarrival_ms: u64,
    },
}

impl LoadMode {
    fn label(self) -> String {
        match self {
            LoadMode::Closed => "closed-loop".to_owned(),
            LoadMode::Open { interarrival_ms } => format!("open-loop({interarrival_ms}ms)"),
        }
    }
}

/// Congestion preset the generator applies to its playback traffic.
///
/// With a preset other than [`Congestion::None`], steady-state workers
/// run the adaptive path ([`OttApp::play_adaptive`]) over seeded
/// per-worker links instead of the fixed-representation hot path, and
/// the report grows an `adaptive:` line with fleet-wide switch,
/// license-churn and rebuffer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Congestion {
    /// Unconstrained links: every play runs the classic fixed-rep path.
    #[default]
    None,
    /// Flat 3 Mbps links: adaptive workers climb the ladder and stay up.
    Steady,
    /// 4 Mbps constricting to 1.2 Mbps at t=20s of each link's local
    /// timeline: workers are forced back down the ladder mid-chain, with
    /// the per-tier license churn that implies.
    Constricted,
}

impl Congestion {
    /// The bandwidth model this preset attaches to the ecosystem.
    #[must_use]
    pub fn bandwidth(self) -> Option<BandwidthConfig> {
        match self {
            Congestion::None => None,
            Congestion::Steady => Some(BandwidthConfig::flat(3_000_000)),
            Congestion::Constricted => Some(BandwidthConfig {
                schedule: BandwidthSchedule::steps(vec![(0, 4_000_000), (20_000, 1_200_000)]),
                burst_bits: 2_000_000,
                spread_permille: 100,
            }),
        }
    }

    /// Stable CLI/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Congestion::None => "none",
            Congestion::Steady => "steady",
            Congestion::Constricted => "constricted",
        }
    }

    /// Parses a CLI label back into a preset.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Congestion::None),
            "steady" => Some(Congestion::Steady),
            "constricted" => Some(Congestion::Constricted),
            _ => None,
        }
    }
}

/// Parameters of one load-generator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Virtual devices to boot (each with its own threaded media DRM
    /// server).
    pub devices: usize,
    /// Concurrent playback workers sharing each device's app.
    pub workers_per_device: usize,
    /// Plays each worker issues.
    pub plays_per_worker: usize,
    /// Master seed: ecosystem derivations and modeled latencies.
    pub seed: u64,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// Which hot-path caches run.
    pub caches: CacheConfig,
    /// Which binder transport the fleet's devices boot with.
    pub transport: TransportKind,
    /// Congestion preset for the steady-state playback traffic.
    pub congestion: Congestion,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            devices: 4,
            workers_per_device: 3,
            plays_per_worker: 6,
            seed: 2022,
            mode: LoadMode::Closed,
            caches: CacheConfig::all(),
            transport: TransportKind::Threaded,
            congestion: Congestion::None,
        }
    }
}

impl LoadConfig {
    /// The CI-sized preset behind `wideleak load --quick`.
    #[must_use]
    pub fn quick() -> Self {
        LoadConfig { devices: 2, workers_per_device: 2, plays_per_worker: 3, ..Self::default() }
    }
}

/// Exact latency percentiles over one sample population (milliseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min_ms: u64,
    /// Integer mean.
    pub mean_ms: u64,
    /// Median (nearest-rank).
    pub p50_ms: u64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: u64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: u64,
    /// Largest sample.
    pub max_ms: u64,
}

impl LatencySummary {
    /// Exact percentiles from a merged campaign histogram. Because the
    /// histogram's buckets are one millisecond wide and its percentile
    /// walk uses the same nearest-rank formula as [`Self::from_samples`],
    /// this summary equals the one computed from the concatenation of
    /// every shard's raw samples — the merge-oracle property the
    /// campaign test battery pins.
    #[must_use]
    pub fn from_histogram(h: &wideleak_android_drm::campaign::LatencyHistogram) -> Self {
        if h.count() == 0 {
            return Self::default();
        }
        LatencySummary {
            count: h.count(),
            min_ms: h.min().unwrap_or(0),
            mean_ms: h.mean().unwrap_or(0),
            p50_ms: h.percentile(50, 100).unwrap_or(0),
            p95_ms: h.percentile(95, 100).unwrap_or(0),
            p99_ms: h.percentile(99, 100).unwrap_or(0),
            max_ms: h.max().unwrap_or(0),
        }
    }

    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let q = |num: usize, den: usize| samples[(n - 1) * num / den];
        LatencySummary {
            count: n as u64,
            min_ms: samples[0],
            mean_ms: samples.iter().sum::<u64>() / n as u64,
            p50_ms: q(50, 100),
            p95_ms: q(95, 100),
            p99_ms: q(99, 100),
            max_ms: samples[n - 1],
        }
    }
}

/// Everything one load run produced, renderable as a deterministic
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Plays issued by the single-threaded warm-up phase.
    pub warmup_plays: u64,
    /// Plays issued by the concurrent workers.
    pub steady_plays: u64,
    /// Plays that returned an error (expected 0 without a fault plan).
    pub failed_plays: u64,
    /// Periodic `reprovision` check-ins issued by workers.
    pub checkins: u64,
    /// Warm-up (cold-path) latency distribution.
    pub warmup_latency: LatencySummary,
    /// Steady-state latency distribution.
    pub steady_latency: LatencySummary,
    /// Virtual wall-clock span of the run: warm-up time plus the
    /// longest worker chain.
    pub makespan_ms: u64,
    /// Plays per virtual second, in hundredths (integer — no float
    /// formatting differences between runs).
    pub throughput_centi_per_sec: u64,
    /// Provisioning-certificate cache counters, when that cache ran.
    pub provisioning_cache: Option<CacheStats>,
    /// License-response cache counters, when that cache ran.
    pub license_cache: Option<CacheStats>,
    /// Decrypt-cache counters summed across the fleet, when enabled.
    pub decrypt_cache: Option<DecryptCacheStats>,
    /// Fleet-wide adaptive-path counters, present when a congestion
    /// preset other than `none` drove the steady phase.
    pub adaptive: Option<AdaptiveLoadStats>,
}

/// Aggregated adaptive-playback counters across every steady worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveLoadStats {
    /// Up-switches across the fleet.
    pub switches_up: u64,
    /// Down-switches across the fleet.
    pub switches_down: u64,
    /// Licenses fetched by adaptive sessions (per-tier key rotation).
    pub license_fetches: u64,
    /// Total rebuffer time across the fleet (virtual ms).
    pub rebuffer_ms: u64,
    /// Total presentation time across the fleet (virtual ms).
    pub played_ms: u64,
}

impl AdaptiveLoadStats {
    /// Rebuffer time in permille of presentation time.
    #[must_use]
    pub fn rebuffer_permille(&self) -> u64 {
        if self.played_ms == 0 {
            return 0;
        }
        u64::try_from(u128::from(self.rebuffer_ms) * 1000 / u128::from(self.played_ms))
            .unwrap_or(u64::MAX)
    }

    fn absorb(&mut self, other: AdaptiveLoadStats) {
        self.switches_up += other.switches_up;
        self.switches_down += other.switches_down;
        self.license_fetches += other.license_fetches;
        self.rebuffer_ms += other.rebuffer_ms;
        self.played_ms += other.played_ms;
    }
}

impl LoadReport {
    /// Renders the deterministic ASCII report `wideleak load` prints.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(out, "== wideleak load report ==");
        let _ = writeln!(
            out,
            "fleet:      {} devices x {} workers x {} plays  (seed {}, {}, {} binder)",
            c.devices,
            c.workers_per_device,
            c.plays_per_worker,
            c.seed,
            c.mode.label(),
            c.transport.label(),
        );
        let _ = writeln!(out, "caches:     {}", cache_label(c.caches));
        let _ = writeln!(
            out,
            "plays:      {} total ({} warm-up + {} steady), {} failed, {} check-ins",
            self.warmup_plays + self.steady_plays,
            self.warmup_plays,
            self.steady_plays,
            self.failed_plays,
            self.checkins,
        );
        let _ = writeln!(
            out,
            "makespan:   {} virtual ms   throughput: {}.{:02} plays/s",
            self.makespan_ms,
            self.throughput_centi_per_sec / 100,
            self.throughput_centi_per_sec % 100,
        );
        let _ = writeln!(out, "latency (virtual ms):");
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "phase", "count", "min", "mean", "p50", "p95", "p99", "max"
        );
        for (phase, l) in [("warm-up", &self.warmup_latency), ("steady", &self.steady_latency)] {
            let _ = writeln!(
                out,
                "  {:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
                phase, l.count, l.min_ms, l.mean_ms, l.p50_ms, l.p95_ms, l.p99_ms, l.max_ms
            );
        }
        out.push_str("cache hit rates:\n");
        match &self.provisioning_cache {
            Some(s) => {
                let _ = writeln!(out, "  provisioning certs: {}", cache_stats_line(s));
            }
            None => out.push_str("  provisioning certs: disabled\n"),
        }
        match &self.license_cache {
            Some(s) => {
                let _ = writeln!(out, "  license responses:  {}", cache_stats_line(s));
            }
            None => out.push_str("  license responses:  disabled\n"),
        }
        match &self.decrypt_cache {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  decrypt keys:       key {}/{} hits, keystream {}/{} hits",
                    s.key_hits,
                    s.key_hits + s.key_misses,
                    s.keystream_hits,
                    s.keystream_hits + s.keystream_misses,
                );
            }
            None => out.push_str("  decrypt keys:       disabled\n"),
        }
        if let Some(a) = &self.adaptive {
            let _ = writeln!(
                out,
                "adaptive:   {} preset: {} up / {} down switches, {} licenses, rebuffer {} permille",
                c.congestion.label(),
                a.switches_up,
                a.switches_down,
                a.license_fetches,
                a.rebuffer_permille(),
            );
        }
        out
    }
}

fn cache_label(caches: CacheConfig) -> String {
    if !caches.any() {
        return "disabled".to_owned();
    }
    let mut parts = Vec::new();
    if caches.provisioning_cert {
        parts.push("provisioning");
    }
    if caches.license_response {
        parts.push("license");
    }
    if caches.decrypt_keys {
        parts.push("decrypt");
    }
    parts.join("+")
}

fn cache_stats_line(s: &CacheStats) -> String {
    format!("{}/{} hits ({} permille)", s.hits, s.lookups(), s.hit_permille())
}

/// Modeled service time of one play: a base picked by cache warmth plus
/// seeded jitter. A pure function of the indices, so the latency
/// population is independent of thread interleaving.
fn modeled_latency_ms(seed: u64, device: usize, worker: usize, iter: usize, warm: bool) -> u64 {
    let salt = ((device as u64) << 40) | ((worker as u64) << 20) | iter as u64;
    let base = if warm { WARM_BASE_MS } else { COLD_BASE_MS };
    base + det_hash(seed, salt) % JITTER_MS
}

/// One booted fleet member: its stack and installed app.
struct FleetDevice {
    stack: DeviceStack,
    app: OttApp,
}

/// Runs one load-generator pass and returns its report.
///
/// The run is deterministic: two calls with the same config produce
/// byte-identical [`LoadReport::render`] output.
///
/// # Panics
///
/// Panics when the config asks for zero devices.
#[must_use]
pub fn run_load(config: &LoadConfig) -> LoadReport {
    assert!(config.devices > 0, "load run needs at least one device");
    let eco = Ecosystem::new(EcosystemConfig {
        seed: config.seed,
        caches: config.caches,
        transport: config.transport,
        bandwidth: config.congestion.bandwidth(),
        ..EcosystemConfig::fast_for_tests()
    });
    let clock = eco.fault_injector().clock().clone();

    // Boot the fleet: discontinued L3 devices running apps that do not
    // enforce revocation (paper Table I), each media DRM server behind
    // the configured transport (worker pool by default, loopback TCP
    // under `--transport tcp`). Congested runs boot L1 devices instead:
    // the adaptive path needs the full representation ladder, which L3
    // output protection caps at 540p.
    let adaptive = config.congestion != Congestion::None;
    let model = if adaptive { DeviceModel::pixel_6() } else { DeviceModel::nexus_5() };
    let fleet: Vec<FleetDevice> = (0..config.devices)
        .map(|d| {
            let stack = eco.boot_device_with(model.clone(), false, config.transport);
            let app = eco.install_app(
                &stack,
                FLEET_APPS[d % FLEET_APPS.len()],
                &format!("load-user-{d}"),
            );
            FleetDevice { stack, app }
        })
        .collect();

    // Warm-up: play every title once per device on the main thread.
    // All cold cache misses (provisioning keygen, license plan
    // resolution) happen here, sequentially and deterministically, so
    // the concurrent phase below only ever produces cache hits and the
    // counters are interleaving-independent.
    let mut warmup_samples = Vec::new();
    let mut warmup_failed = 0u64;
    for (d, member) in fleet.iter().enumerate() {
        for (i, title) in FLEET_TITLES.iter().enumerate() {
            let lat = modeled_latency_ms(config.seed, d, WARMUP_WORKER, i, false);
            if member.app.play(title).is_err() {
                warmup_failed += 1;
            }
            clock.advance_ms(lat);
            observe_play(lat);
            warmup_samples.push(lat);
        }
    }
    let warmup_span_ms: u64 = warmup_samples.iter().sum();

    // Steady state: M workers per device share the device's app and
    // hammer the warmed paths concurrently.
    let failed = AtomicU64::new(warmup_failed);
    let checkins = AtomicU64::new(0);
    // Pre-mint every worker's link in (device, worker) order on the main
    // thread: link seeds come from a shared mint counter, so the minting
    // order — not the spawn interleaving — must be deterministic. Each
    // link then advances a private local timeline inside its worker.
    let mut links: VecDeque<Option<ClientLink>> = (0..fleet.len() * config.workers_per_device)
        .map(|_| adaptive.then(|| eco.adaptive_link()))
        .collect();
    let mut worker_results: Vec<(Vec<u64>, u64, AdaptiveLoadStats)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (d, member) in fleet.iter().enumerate() {
            for w in 0..config.workers_per_device {
                let clock = &clock;
                let failed = &failed;
                let checkins = &checkins;
                let link = links.pop_front().expect("one link minted per worker");
                handles.push(scope.spawn(move || {
                    run_worker(config, &member.app, clock, failed, checkins, d, w, link)
                }));
            }
        }
        for handle in handles {
            worker_results.push(handle.join().expect("load worker panicked"));
        }
    });

    let mut steady_samples: Vec<u64> =
        worker_results.iter().flat_map(|(samples, _, _)| samples.iter().copied()).collect();
    let longest_chain_ms = worker_results.iter().map(|&(_, span, _)| span).max().unwrap_or(0);
    let adaptive_stats = adaptive.then(|| {
        let mut total = AdaptiveLoadStats::default();
        for &(_, _, stats) in &worker_results {
            total.absorb(stats);
        }
        total
    });
    let makespan_ms = (warmup_span_ms + longest_chain_ms).max(1);
    let total_plays = warmup_samples.len() as u64 + steady_samples.len() as u64;
    let decrypt_cache = config.caches.decrypt_keys.then(|| sum_decrypt_stats(&fleet)).flatten();
    LoadReport {
        config: *config,
        warmup_plays: warmup_samples.len() as u64,
        steady_plays: steady_samples.len() as u64,
        failed_plays: failed.load(Ordering::Relaxed),
        checkins: checkins.load(Ordering::Relaxed),
        warmup_latency: LatencySummary::from_samples(&mut warmup_samples),
        steady_latency: LatencySummary::from_samples(&mut steady_samples),
        makespan_ms,
        throughput_centi_per_sec: total_plays * 100_000 / makespan_ms,
        provisioning_cache: eco.provisioning_cache_stats(),
        license_cache: eco.license_cache_stats(),
        decrypt_cache,
        adaptive: adaptive_stats,
    }
}

/// One worker's closed/open loop: returns its latency samples, the
/// virtual span of its sequential chain (busy time plus interarrival
/// gaps) and its adaptive counters (zeroed on the classic path).
#[allow(clippy::too_many_arguments)]
fn run_worker(
    config: &LoadConfig,
    app: &OttApp,
    clock: &VirtualClock,
    failed: &AtomicU64,
    checkins: &AtomicU64,
    device: usize,
    worker: usize,
    mut link: Option<ClientLink>,
) -> (Vec<u64>, u64, AdaptiveLoadStats) {
    let warm = config.caches.any();
    let mut samples = Vec::with_capacity(config.plays_per_worker);
    let mut span_ms = 0u64;
    let mut adaptive = AdaptiveLoadStats::default();
    for iter in 0..config.plays_per_worker {
        if let LoadMode::Open { interarrival_ms } = config.mode {
            clock.advance_ms(interarrival_ms);
            span_ms += interarrival_ms;
        }
        let title = FLEET_TITLES[iter % FLEET_TITLES.len()];
        // Under congestion a play's modeled service time additionally
        // carries the rebuffer stalls its link imposed.
        let mut lat = modeled_latency_ms(config.seed, device, worker, iter, warm);
        match link.as_mut() {
            Some(l) => match app.play_adaptive(title, &AdaptConfig::quick(), l) {
                Ok(outcome) => {
                    lat += outcome.rebuffer_ms;
                    adaptive.absorb(AdaptiveLoadStats {
                        switches_up: outcome.switches_up,
                        switches_down: outcome.switches_down,
                        license_fetches: outcome.license_fetches,
                        rebuffer_ms: outcome.rebuffer_ms,
                        played_ms: outcome.played_ms,
                    });
                }
                Err(_) => {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
            },
            None => {
                if app.play(title).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        clock.advance_ms(lat);
        observe_play(lat);
        samples.push(lat);
        span_ms += lat;
        // Periodic device check-in: re-runs the provisioning exchange,
        // which the certificate cache serves without RSA keygen.
        if iter % 3 == 2 {
            if app.reprovision().is_err() {
                failed.fetch_add(1, Ordering::Relaxed);
            } else {
                checkins.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    (samples, span_ms, adaptive)
}

fn observe_play(lat_ms: u64) {
    if wideleak_telemetry::is_enabled() {
        wideleak_telemetry::observe("load.play.latency", Duration::from_millis(lat_ms));
        wideleak_telemetry::incr("load.plays");
    }
}

/// Sums decrypt-cache counters across the fleet. `None` when the cache
/// is disabled (every backend reports `None`).
fn sum_decrypt_stats(fleet: &[FleetDevice]) -> Option<DecryptCacheStats> {
    let mut total: Option<DecryptCacheStats> = None;
    for member in fleet {
        if let Some(s) = member.stack.cdm.oemcrypto().decrypt_cache_stats() {
            let t = total.get_or_insert_with(DecryptCacheStats::default);
            t.key_hits += s.key_hits;
            t.key_misses += s.key_misses;
            t.keystream_hits += s.keystream_hits;
            t.keystream_misses += s.keystream_misses;
        }
    }
    total
}

// ---------------------------------------------------------------------
// High-concurrency fleet mode
// ---------------------------------------------------------------------

/// Wall-clock budget for a fleet run before undelivered calls are
/// written off — a CI backstop, not a measurement.
const FLEET_DEADLINE: Duration = Duration::from_secs(120);

/// Parameters of one high-concurrency fleet run (`wideleak load
/// --fleet N`): N simulated devices each hold a real socket open
/// against one reactor [`TcpDrmServer`], with up to `pipeline_depth`
/// wire-v3 request-id-tagged calls in flight per connection.
///
/// Unlike [`LoadConfig`], which measures the modeled study paths, this
/// mode measures the transport itself: each device is a raw wire
/// client driven by a non-blocking state machine, so a handful of
/// driver threads carry tens of thousands of concurrent connections.
/// Both halves live in this process — each device costs two file
/// descriptors, so raise `ulimit -n` beyond ~2× devices for full-size
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Concurrent simulated devices (one socket each).
    pub devices: usize,
    /// Scheme probes each device issues (alternating answers, so
    /// correlation mistakes are visible as unexpected replies).
    pub calls_per_device: usize,
    /// Calls each device keeps in flight on its connection.
    pub pipeline_depth: usize,
    /// Seed for nonces and the served CDM's derivations.
    pub seed: u64,
    /// Driver threads the devices are partitioned across.
    pub drivers: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 10_000,
            calls_per_device: 4,
            pipeline_depth: 4,
            seed: 2022,
            drivers: 4,
        }
    }
}

impl FleetConfig {
    /// The CI-sized preset behind `wideleak load --fleet N --quick`.
    #[must_use]
    pub fn quick() -> Self {
        FleetConfig { devices: 1_000, calls_per_device: 2, ..Self::default() }
    }
}

/// What one fleet run delivered. All counts are deterministic for a
/// given config (on a healthy host); `elapsed_ms` and
/// `peak_active_connections` are wall-clock observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetReport {
    /// Devices the run asked for.
    pub devices: usize,
    /// Sockets that connected.
    pub connected: u64,
    /// Devices whose connect failed (their calls count as undelivered).
    pub connect_failures: u64,
    /// Call frames fully written to the server.
    pub calls_sent: u64,
    /// Replies that matched their call's expected answer.
    pub replies_ok: u64,
    /// Replies with a wrong/unknown id or a wrong answer — any nonzero
    /// value means the pipelining correlation broke.
    pub replies_unexpected: u64,
    /// Expected replies that never arrived (dead connections, deadline).
    pub undelivered: u64,
    /// Sessions opened (and then closed) by the 1-in-16 session devices.
    pub sessions_opened: u64,
    /// Largest `netserver.connections.active` the server reported
    /// while the run was in flight.
    pub peak_active_connections: u64,
    /// Wall-clock duration of the run.
    pub elapsed_ms: u64,
}

impl FleetReport {
    /// Renders the ASCII report `wideleak load --fleet` prints.
    #[must_use]
    pub fn render(&self, config: &FleetConfig) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== wideleak fleet report ==");
        let _ = writeln!(
            out,
            "fleet:      {} devices x {} calls, {} drivers, pipeline depth {} (seed {})",
            config.devices,
            config.calls_per_device,
            config.drivers,
            config.pipeline_depth,
            config.seed,
        );
        let _ = writeln!(
            out,
            "sockets:    {} connected, {} connect failures, peak {} active at the server",
            self.connected, self.connect_failures, self.peak_active_connections,
        );
        let _ = writeln!(
            out,
            "calls:      {} sent: {} ok, {} unexpected, {} undelivered",
            self.calls_sent, self.replies_ok, self.replies_unexpected, self.undelivered,
        );
        let _ = writeln!(out, "sessions:   {} opened and closed", self.sessions_opened);
        let _ = writeln!(out, "elapsed:    {} ms wall", self.elapsed_ms);
        out
    }

    /// Whether every call was answered as expected.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.connect_failures == 0 && self.replies_unexpected == 0 && self.undelivered == 0
    }
}

/// What a device expects back for one in-flight call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// `IsSchemeSupported` with the Widevine UUID → `Bool(true)`.
    SchemeTrue,
    /// `IsSchemeSupported` with a zero UUID → `Bool(false)`.
    SchemeFalse,
    /// `OpenSession` → any `SessionId` (which then enqueues the close).
    Session,
    /// `CloseSession` → any `Ok` reply.
    CloseOk,
}

/// One simulated device: a non-blocking socket plus the frame-level
/// state machines (partial writes out, reassembly in, expectations by
/// request id).
struct SimDevice {
    stream: TcpStream,
    /// Frames not yet fully written: `(request id, expectation, bytes)`.
    outbox: VecDeque<(u64, Expect, Vec<u8>)>,
    /// Progress into the front outbox frame.
    woffset: usize,
    /// Expectations for fully-written calls, by request id.
    pending: HashMap<u64, Expect>,
    /// Inbound reassembly buffer.
    rbuf: Vec<u8>,
    expected_total: usize,
    received: usize,
    next_id: u64,
}

impl SimDevice {
    fn enqueue(&mut self, expect: Expect, call: &DrmCall) {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_frame_full(&FrameBody::Call(call.clone()), None, Some(id));
        self.outbox.push_back((id, expect, frame));
    }

    fn finished(&self) -> bool {
        self.received >= self.expected_total
    }
}

/// Per-driver tallies, summed into the [`FleetReport`].
#[derive(Debug, Clone, Copy, Default)]
struct DriverTally {
    connected: u64,
    connect_failures: u64,
    calls_sent: u64,
    replies_ok: u64,
    replies_unexpected: u64,
    undelivered: u64,
    sessions_opened: u64,
}

/// Splits `0..devices` into `drivers` contiguous ranges (the first
/// `devices % drivers` ranges take one extra). The fleet drivers here
/// and the campaign coordinator's shard assignment both use this, so a
/// shard is always a contiguous device-id range.
#[must_use]
pub fn partition(devices: usize, drivers: usize) -> Vec<Range<usize>> {
    let per = devices / drivers;
    let extra = devices % drivers;
    let mut ranges = Vec::with_capacity(drivers);
    let mut start = 0;
    for i in 0..drivers {
        let len = per + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// A device's scripted calls plus how many replies it must collect
/// (the 1-in-16 session devices add an open and a deferred close).
fn device_script(d: usize, config: &FleetConfig) -> (Vec<(Expect, DrmCall)>, usize) {
    let mut script = Vec::with_capacity(config.calls_per_device + 1);
    for i in 0..config.calls_per_device {
        if i % 2 == 0 {
            script.push((
                Expect::SchemeTrue,
                DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID },
            ));
        } else {
            script.push((Expect::SchemeFalse, DrmCall::IsSchemeSupported { uuid: [0; 16] }));
        }
    }
    let mut expected = script.len();
    if d.is_multiple_of(16) {
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&det_hash(config.seed, d as u64).to_le_bytes());
        nonce[8..].copy_from_slice(&(d as u64).to_le_bytes());
        script.push((Expect::Session, DrmCall::OpenSession { nonce }));
        // The open's reply plus the close enqueued when it arrives.
        expected += 2;
    }
    (script, expected)
}

/// Sweeps one device once: write while the in-flight window has room,
/// drain the socket, settle complete reply frames. Returns
/// `(made_progress, died)`.
fn sweep_device(
    dev: &mut SimDevice,
    depth: usize,
    scratch: &mut [u8],
    tally: &mut DriverTally,
) -> (bool, bool) {
    let mut progress = false;
    // Write: at most `depth` calls in flight at once.
    while dev.pending.len() < depth {
        let Some((_, _, frame)) = dev.outbox.front() else { break };
        match dev.stream.write(&frame[dev.woffset..]) {
            Ok(0) => return (progress, true),
            Ok(n) => {
                dev.woffset += n;
                progress = true;
                if dev.woffset == frame.len() {
                    let (id, expect, _) = dev.outbox.pop_front().expect("front exists");
                    dev.woffset = 0;
                    dev.pending.insert(id, expect);
                    tally.calls_sent += 1;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (progress, true),
        }
    }
    // Read everything available.
    loop {
        match dev.stream.read(scratch) {
            Ok(0) => return (progress, true),
            Ok(n) => {
                dev.rbuf.extend_from_slice(&scratch[..n]);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (progress, true),
        }
    }
    // Settle complete frames.
    while dev.rbuf.len() >= HEADER_LEN {
        let total = match frame_len(&dev.rbuf[..HEADER_LEN]) {
            Ok(total) => total,
            Err(_) => return (progress, true),
        };
        if dev.rbuf.len() < total {
            break;
        }
        let frame: Vec<u8> = dev.rbuf.drain(..total).collect();
        let Ok((body, meta, _)) = decode_frame_full(&frame) else {
            return (progress, true);
        };
        progress = true;
        dev.received += 1;
        let expect = meta.request_id.and_then(|id| dev.pending.remove(&id));
        match (expect, body) {
            (Some(Expect::SchemeTrue), FrameBody::Reply(Ok(DrmReply::Bool(true))))
            | (Some(Expect::SchemeFalse), FrameBody::Reply(Ok(DrmReply::Bool(false))))
            | (Some(Expect::CloseOk), FrameBody::Reply(Ok(_))) => tally.replies_ok += 1,
            (Some(Expect::Session), FrameBody::Reply(Ok(DrmReply::SessionId(sid)))) => {
                tally.replies_ok += 1;
                tally.sessions_opened += 1;
                dev.enqueue(Expect::CloseOk, &DrmCall::CloseSession { session_id: sid });
            }
            _ => tally.replies_unexpected += 1,
        }
    }
    (progress, false)
}

/// One driver thread's share of the fleet: connect its device range,
/// then sweep the state machines until every device has collected its
/// replies (or the deadline writes the rest off).
fn drive_devices(
    addr: SocketAddr,
    range: Range<usize>,
    config: &FleetConfig,
    connected_rendezvous: &std::sync::Barrier,
    deadline: Instant,
) -> DriverTally {
    let depth = config.pipeline_depth.max(1);
    let mut tally = DriverTally::default();
    let mut devices: Vec<Option<SimDevice>> = Vec::with_capacity(range.len());
    for d in range {
        let (script, expected_total) = device_script(d, config);
        // A couple of retries ride out transient accept-queue pressure.
        let mut stream = None;
        for attempt in 0..3 {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) if attempt < 2 => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => {}
            }
        }
        let Some(stream) = stream else {
            tally.connect_failures += 1;
            tally.undelivered += expected_total as u64;
            devices.push(None);
            continue;
        };
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let mut dev = SimDevice {
            stream,
            outbox: VecDeque::new(),
            woffset: 0,
            pending: HashMap::new(),
            rbuf: Vec::new(),
            expected_total,
            received: 0,
            next_id: 1,
        };
        for (expect, call) in &script {
            dev.enqueue(*expect, call);
        }
        tally.connected += 1;
        devices.push(Some(dev));
    }
    // No driver starts traffic until every driver has finished
    // connecting: the whole fleet is on the wire simultaneously before
    // the first call, so the server's active gauge measures true
    // fleet-wide concurrency.
    connected_rendezvous.wait();
    // Finished devices keep their socket open in `held` until the whole
    // driver is done, so the fleet's connections stay concurrent for
    // the duration of its traffic.
    let mut held: Vec<TcpStream> = Vec::new();
    let mut remaining = devices.iter().flatten().count();
    let mut scratch = vec![0u8; 16 * 1024];
    while remaining > 0 {
        if Instant::now() > deadline {
            for dev in devices.iter().flatten() {
                tally.undelivered += dev.expected_total.saturating_sub(dev.received) as u64;
            }
            break;
        }
        let mut progress = false;
        for slot in &mut devices {
            let Some(dev) = slot.as_mut() else { continue };
            let (did, died) = sweep_device(dev, depth, &mut scratch, &mut tally);
            progress |= did;
            if died {
                tally.undelivered += dev.expected_total.saturating_sub(dev.received) as u64;
                *slot = None;
                remaining -= 1;
            } else if dev.finished() {
                let dev = slot.take().expect("slot occupied");
                held.push(dev.stream);
                remaining -= 1;
            }
        }
        if !progress {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    drop(held);
    tally
}

/// Runs one high-concurrency fleet pass against a fresh reactor server
/// and returns its report.
///
/// # Panics
///
/// Panics when the config asks for zero devices, or when the loopback
/// server cannot bind.
#[must_use]
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    assert!(config.devices > 0, "fleet run needs at least one device");
    let eco =
        Ecosystem::new(EcosystemConfig { seed: config.seed, ..EcosystemConfig::fast_for_tests() });
    let drm = eco.media_drm_server(DeviceModel::nexus_5());
    let server = TcpDrmServer::bind("127.0.0.1:0", drm).expect("binding the fleet server");
    let addr = server.local_addr();
    let started = Instant::now();
    let deadline = started + FLEET_DEADLINE;
    let drivers = config.drivers.clamp(1, config.devices);
    let connected_rendezvous = std::sync::Barrier::new(drivers);
    let mut tallies: Vec<DriverTally> = Vec::new();
    let mut peak = 0u64;
    std::thread::scope(|scope| {
        let rendezvous = &connected_rendezvous;
        let handles: Vec<_> = partition(config.devices, drivers)
            .into_iter()
            .map(|range| {
                scope.spawn(move || drive_devices(addr, range, config, rendezvous, deadline))
            })
            .collect();
        // Sample the server's active-connections gauge while the
        // drivers run; the max is the report's concurrency evidence.
        loop {
            peak = peak.max(server.active_connections());
            if handles.iter().all(std::thread::ScopedJoinHandle::is_finished) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        for handle in handles {
            tallies.push(handle.join().expect("fleet driver panicked"));
        }
    });
    let mut report = FleetReport {
        devices: config.devices,
        peak_active_connections: peak,
        // Clamp before converting: saturating to u64::MAX would poison
        // any rate math that divides by elapsed time.
        elapsed_ms: u64::try_from(started.elapsed().as_millis().min(u128::from(u64::MAX)))
            .expect("clamped to u64 range"),
        ..FleetReport::default()
    };
    for tally in tallies {
        report.connected += tally.connected;
        report.connect_failures += tally.connect_failures;
        report.calls_sent += tally.calls_sent;
        report.replies_ok += tally.replies_ok;
        report.replies_unexpected += tally.replies_unexpected;
        report.undelivered += tally.undelivered;
        report.sessions_opened += tally.sessions_opened;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_deterministic() {
        let config = LoadConfig::quick();
        let a = run_load(&config);
        let b = run_load(&config);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn cached_run_registers_hits_on_every_tier() {
        let report = run_load(&LoadConfig::quick());
        assert_eq!(report.failed_plays, 0);
        assert!(report.checkins > 0);
        let prov = report.provisioning_cache.expect("cert cache enabled");
        assert!(prov.hits > 0, "check-ins hit the cert cache: {prov:?}");
        let lic = report.license_cache.expect("license cache enabled");
        assert!(lic.hits > 0, "steady plays hit the license cache: {lic:?}");
        let dec = report.decrypt_cache.expect("decrypt cache enabled");
        assert!(dec.key_hits > 0, "repeat samples reuse key schedules: {dec:?}");
        assert!(
            report.steady_latency.p50_ms < report.warmup_latency.p50_ms,
            "warm plays are modeled faster than cold plays"
        );
    }

    #[test]
    fn uncached_run_reports_disabled_caches() {
        let config = LoadConfig { caches: CacheConfig::none(), ..LoadConfig::quick() };
        let report = run_load(&config);
        assert_eq!(report.failed_plays, 0);
        assert!(report.provisioning_cache.is_none());
        assert!(report.license_cache.is_none());
        assert!(report.decrypt_cache.is_none());
        assert!(report.render().contains("disabled"));
    }

    #[test]
    fn open_loop_interarrival_stretches_the_makespan() {
        let closed = run_load(&LoadConfig::quick());
        let open = run_load(&LoadConfig {
            mode: LoadMode::Open { interarrival_ms: 50 },
            ..LoadConfig::quick()
        });
        assert!(open.makespan_ms > closed.makespan_ms);
        assert!(open.throughput_centi_per_sec < closed.throughput_centi_per_sec);
    }

    #[test]
    fn uncongested_run_reports_no_adaptive_stats() {
        let report = run_load(&LoadConfig::quick());
        assert!(report.adaptive.is_none());
        assert!(!report.render().contains("adaptive:"));
    }

    #[test]
    fn constricted_run_downswitches_and_is_deterministic() {
        let config = LoadConfig { congestion: Congestion::Constricted, ..LoadConfig::quick() };
        let a = run_load(&config);
        let b = run_load(&config);
        assert_eq!(a.render(), b.render(), "congested load runs are seed-deterministic");
        assert_eq!(a.failed_plays, 0, "congestion is not a fault");
        let stats = a.adaptive.expect("adaptive stats present under congestion");
        assert!(stats.switches_down > 0, "constriction forces downswitches: {stats:?}");
        assert!(stats.license_fetches > 0);
        assert!(a.render().contains("adaptive:   constricted preset"));
    }

    #[test]
    fn tcp_fleet_matches_threaded_fleet_except_the_label() {
        let threaded = run_load(&LoadConfig::quick());
        let tcp = run_load(&LoadConfig { transport: TransportKind::Tcp, ..LoadConfig::quick() });
        assert_eq!(tcp.failed_plays, 0);
        // Same traffic, same modeled latencies — only the fleet line
        // differs, by the transport label.
        assert_eq!(threaded.render().replace("threaded binder", "tcp binder"), tcp.render());
    }

    /// A unit-test-sized fleet; the CI smoke runs the real 1k+ preset
    /// through the binary.
    fn small_fleet() -> FleetConfig {
        FleetConfig { devices: 160, calls_per_device: 2, ..FleetConfig::quick() }
    }

    #[test]
    fn fleet_answers_every_call_with_the_expected_value() {
        let config = small_fleet();
        let report = run_fleet(&config);
        assert!(report.clean(), "fleet run was not clean: {report:?}");
        assert_eq!(report.connected, 160);
        // 160 devices × 2 probes, plus 10 session devices × (open+close).
        assert_eq!(report.replies_ok, 160 * 2 + 10 * 2);
        assert_eq!(report.sessions_opened, 10);
        assert!(
            report.peak_active_connections >= 80,
            "fleet connections were concurrent: peak {}",
            report.peak_active_connections
        );
    }

    #[test]
    fn fleet_counts_are_deterministic() {
        let config = small_fleet();
        let a = run_fleet(&config);
        let b = run_fleet(&config);
        assert_eq!(
            (a.connected, a.calls_sent, a.replies_ok, a.sessions_opened, a.undelivered),
            (b.connected, b.calls_sent, b.replies_ok, b.sessions_opened, b.undelivered),
        );
    }

    #[test]
    fn fleet_partition_covers_every_device_once() {
        for (devices, drivers) in [(10, 4), (3, 4), (1000, 4), (7, 1)] {
            let ranges = partition(devices, drivers);
            let total: usize = ranges.iter().map(ExactSizeIterator::len).sum();
            assert_eq!(total, devices);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!((s.min_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms), (1, 50, 95, 99, 100));
        assert_eq!(s.mean_ms, 50);
    }
}
