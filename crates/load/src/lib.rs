//! Closed-loop fleet load generator for the WideLeak ecosystem.
//!
//! Drives N virtual devices × M concurrent playback workers through the
//! `ThreadedBinder` transport on the shared virtual clock. Every run is
//! deterministic for
//! a given [`LoadConfig`]: service times are modeled from the seed (not
//! wall time), percentiles are computed exactly from the full sample
//! set, and the warm-up phase absorbs every cold cache miss on the main
//! thread before the concurrent workers start — so cache hit/miss
//! counters come out identical run to run regardless of interleaving.
//!
//! The generator exercises the three hot-path caches end to end:
//! repeated plays hit the license-response cache, periodic device
//! check-ins ([`OttApp::reprovision`]) hit the provisioning-certificate
//! cache, and repeated sample decrypts hit the per-session derived-key
//! cache in the CDM. With [`CacheConfig::none`] the same traffic runs
//! the full cold paths, which is what `benches/license_path.rs` and the
//! caches-off byte-identity tests compare against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use wideleak_device::catalog::DeviceModel;
use wideleak_faults::{det_hash, VirtualClock};
use wideleak_ott::apps::OttApp;
use wideleak_ott::cache::{CacheConfig, CacheStats};
use wideleak_ott::ecosystem::{DeviceStack, Ecosystem, EcosystemConfig};

pub use wideleak_android_drm::binder::TransportKind;
pub use wideleak_cdm::oemcrypto::DecryptCacheStats;

/// Apps that stream on a discontinued L3 device (no revocation
/// enforcement), cycled across the fleet's devices.
const FLEET_APPS: &[&str] = &["netflix", "hulu", "mycanal", "showtime", "ocs", "salto"];

/// The two demo titles workers alternate between.
const FLEET_TITLES: &[&str] = &["title-001", "title-002"];

/// Modeled service time of a play that runs the full cold path (ms).
const COLD_BASE_MS: u64 = 42;
/// Modeled service time of a play served from warm caches (ms).
const WARM_BASE_MS: u64 = 11;
/// Seeded jitter added on top of either base (exclusive upper bound, ms).
const JITTER_MS: u64 = 9;
/// Worker-index sentinel for warm-up plays in the latency salt.
const WARMUP_WORKER: usize = 0xFFFF;

/// Arrival discipline of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Each worker issues its next play as soon as the previous one
    /// finishes.
    Closed,
    /// Each worker waits a fixed virtual interarrival gap before every
    /// play.
    Open {
        /// Virtual milliseconds between a worker's consecutive plays.
        interarrival_ms: u64,
    },
}

impl LoadMode {
    fn label(self) -> String {
        match self {
            LoadMode::Closed => "closed-loop".to_owned(),
            LoadMode::Open { interarrival_ms } => format!("open-loop({interarrival_ms}ms)"),
        }
    }
}

/// Parameters of one load-generator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Virtual devices to boot (each with its own threaded media DRM
    /// server).
    pub devices: usize,
    /// Concurrent playback workers sharing each device's app.
    pub workers_per_device: usize,
    /// Plays each worker issues.
    pub plays_per_worker: usize,
    /// Master seed: ecosystem derivations and modeled latencies.
    pub seed: u64,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// Which hot-path caches run.
    pub caches: CacheConfig,
    /// Which binder transport the fleet's devices boot with.
    pub transport: TransportKind,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            devices: 4,
            workers_per_device: 3,
            plays_per_worker: 6,
            seed: 2022,
            mode: LoadMode::Closed,
            caches: CacheConfig::all(),
            transport: TransportKind::Threaded,
        }
    }
}

impl LoadConfig {
    /// The CI-sized preset behind `wideleak load --quick`.
    #[must_use]
    pub fn quick() -> Self {
        LoadConfig { devices: 2, workers_per_device: 2, plays_per_worker: 3, ..Self::default() }
    }
}

/// Exact latency percentiles over one sample population (milliseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min_ms: u64,
    /// Integer mean.
    pub mean_ms: u64,
    /// Median (nearest-rank).
    pub p50_ms: u64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: u64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: u64,
    /// Largest sample.
    pub max_ms: u64,
}

impl LatencySummary {
    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let q = |num: usize, den: usize| samples[(n - 1) * num / den];
        LatencySummary {
            count: n as u64,
            min_ms: samples[0],
            mean_ms: samples.iter().sum::<u64>() / n as u64,
            p50_ms: q(50, 100),
            p95_ms: q(95, 100),
            p99_ms: q(99, 100),
            max_ms: samples[n - 1],
        }
    }
}

/// Everything one load run produced, renderable as a deterministic
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Plays issued by the single-threaded warm-up phase.
    pub warmup_plays: u64,
    /// Plays issued by the concurrent workers.
    pub steady_plays: u64,
    /// Plays that returned an error (expected 0 without a fault plan).
    pub failed_plays: u64,
    /// Periodic `reprovision` check-ins issued by workers.
    pub checkins: u64,
    /// Warm-up (cold-path) latency distribution.
    pub warmup_latency: LatencySummary,
    /// Steady-state latency distribution.
    pub steady_latency: LatencySummary,
    /// Virtual wall-clock span of the run: warm-up time plus the
    /// longest worker chain.
    pub makespan_ms: u64,
    /// Plays per virtual second, in hundredths (integer — no float
    /// formatting differences between runs).
    pub throughput_centi_per_sec: u64,
    /// Provisioning-certificate cache counters, when that cache ran.
    pub provisioning_cache: Option<CacheStats>,
    /// License-response cache counters, when that cache ran.
    pub license_cache: Option<CacheStats>,
    /// Decrypt-cache counters summed across the fleet, when enabled.
    pub decrypt_cache: Option<DecryptCacheStats>,
}

impl LoadReport {
    /// Renders the deterministic ASCII report `wideleak load` prints.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(out, "== wideleak load report ==");
        let _ = writeln!(
            out,
            "fleet:      {} devices x {} workers x {} plays  (seed {}, {}, {} binder)",
            c.devices,
            c.workers_per_device,
            c.plays_per_worker,
            c.seed,
            c.mode.label(),
            c.transport.label(),
        );
        let _ = writeln!(out, "caches:     {}", cache_label(c.caches));
        let _ = writeln!(
            out,
            "plays:      {} total ({} warm-up + {} steady), {} failed, {} check-ins",
            self.warmup_plays + self.steady_plays,
            self.warmup_plays,
            self.steady_plays,
            self.failed_plays,
            self.checkins,
        );
        let _ = writeln!(
            out,
            "makespan:   {} virtual ms   throughput: {}.{:02} plays/s",
            self.makespan_ms,
            self.throughput_centi_per_sec / 100,
            self.throughput_centi_per_sec % 100,
        );
        let _ = writeln!(out, "latency (virtual ms):");
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "phase", "count", "min", "mean", "p50", "p95", "p99", "max"
        );
        for (phase, l) in [("warm-up", &self.warmup_latency), ("steady", &self.steady_latency)] {
            let _ = writeln!(
                out,
                "  {:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
                phase, l.count, l.min_ms, l.mean_ms, l.p50_ms, l.p95_ms, l.p99_ms, l.max_ms
            );
        }
        out.push_str("cache hit rates:\n");
        match &self.provisioning_cache {
            Some(s) => {
                let _ = writeln!(out, "  provisioning certs: {}", cache_stats_line(s));
            }
            None => out.push_str("  provisioning certs: disabled\n"),
        }
        match &self.license_cache {
            Some(s) => {
                let _ = writeln!(out, "  license responses:  {}", cache_stats_line(s));
            }
            None => out.push_str("  license responses:  disabled\n"),
        }
        match &self.decrypt_cache {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  decrypt keys:       key {}/{} hits, keystream {}/{} hits",
                    s.key_hits,
                    s.key_hits + s.key_misses,
                    s.keystream_hits,
                    s.keystream_hits + s.keystream_misses,
                );
            }
            None => out.push_str("  decrypt keys:       disabled\n"),
        }
        out
    }
}

fn cache_label(caches: CacheConfig) -> String {
    if !caches.any() {
        return "disabled".to_owned();
    }
    let mut parts = Vec::new();
    if caches.provisioning_cert {
        parts.push("provisioning");
    }
    if caches.license_response {
        parts.push("license");
    }
    if caches.decrypt_keys {
        parts.push("decrypt");
    }
    parts.join("+")
}

fn cache_stats_line(s: &CacheStats) -> String {
    format!("{}/{} hits ({} permille)", s.hits, s.lookups(), s.hit_permille())
}

/// Modeled service time of one play: a base picked by cache warmth plus
/// seeded jitter. A pure function of the indices, so the latency
/// population is independent of thread interleaving.
fn modeled_latency_ms(seed: u64, device: usize, worker: usize, iter: usize, warm: bool) -> u64 {
    let salt = ((device as u64) << 40) | ((worker as u64) << 20) | iter as u64;
    let base = if warm { WARM_BASE_MS } else { COLD_BASE_MS };
    base + det_hash(seed, salt) % JITTER_MS
}

/// One booted fleet member: its stack and installed app.
struct FleetDevice {
    stack: DeviceStack,
    app: OttApp,
}

/// Runs one load-generator pass and returns its report.
///
/// The run is deterministic: two calls with the same config produce
/// byte-identical [`LoadReport::render`] output.
///
/// # Panics
///
/// Panics when the config asks for zero devices.
#[must_use]
pub fn run_load(config: &LoadConfig) -> LoadReport {
    assert!(config.devices > 0, "load run needs at least one device");
    let eco = Ecosystem::new(EcosystemConfig {
        seed: config.seed,
        caches: config.caches,
        transport: config.transport,
        ..EcosystemConfig::fast_for_tests()
    });
    let clock = eco.fault_injector().clock().clone();

    // Boot the fleet: discontinued L3 devices running apps that do not
    // enforce revocation (paper Table I), each media DRM server behind
    // the configured transport (worker pool by default, loopback TCP
    // under `--transport tcp`).
    let fleet: Vec<FleetDevice> = (0..config.devices)
        .map(|d| {
            let stack = eco.boot_device_with(DeviceModel::nexus_5(), false, config.transport);
            let app = eco.install_app(
                &stack,
                FLEET_APPS[d % FLEET_APPS.len()],
                &format!("load-user-{d}"),
            );
            FleetDevice { stack, app }
        })
        .collect();

    // Warm-up: play every title once per device on the main thread.
    // All cold cache misses (provisioning keygen, license plan
    // resolution) happen here, sequentially and deterministically, so
    // the concurrent phase below only ever produces cache hits and the
    // counters are interleaving-independent.
    let mut warmup_samples = Vec::new();
    let mut warmup_failed = 0u64;
    for (d, member) in fleet.iter().enumerate() {
        for (i, title) in FLEET_TITLES.iter().enumerate() {
            let lat = modeled_latency_ms(config.seed, d, WARMUP_WORKER, i, false);
            if member.app.play(title).is_err() {
                warmup_failed += 1;
            }
            clock.advance_ms(lat);
            observe_play(lat);
            warmup_samples.push(lat);
        }
    }
    let warmup_span_ms: u64 = warmup_samples.iter().sum();

    // Steady state: M workers per device share the device's app and
    // hammer the warmed paths concurrently.
    let failed = AtomicU64::new(warmup_failed);
    let checkins = AtomicU64::new(0);
    let mut worker_results: Vec<(Vec<u64>, u64)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (d, member) in fleet.iter().enumerate() {
            for w in 0..config.workers_per_device {
                let clock = &clock;
                let failed = &failed;
                let checkins = &checkins;
                handles.push(
                    scope.spawn(move || {
                        run_worker(config, &member.app, clock, failed, checkins, d, w)
                    }),
                );
            }
        }
        for handle in handles {
            worker_results.push(handle.join().expect("load worker panicked"));
        }
    });

    let mut steady_samples: Vec<u64> =
        worker_results.iter().flat_map(|(samples, _)| samples.iter().copied()).collect();
    let longest_chain_ms = worker_results.iter().map(|&(_, span)| span).max().unwrap_or(0);
    let makespan_ms = (warmup_span_ms + longest_chain_ms).max(1);
    let total_plays = warmup_samples.len() as u64 + steady_samples.len() as u64;
    let decrypt_cache = config.caches.decrypt_keys.then(|| sum_decrypt_stats(&fleet)).flatten();
    LoadReport {
        config: *config,
        warmup_plays: warmup_samples.len() as u64,
        steady_plays: steady_samples.len() as u64,
        failed_plays: failed.load(Ordering::Relaxed),
        checkins: checkins.load(Ordering::Relaxed),
        warmup_latency: LatencySummary::from_samples(&mut warmup_samples),
        steady_latency: LatencySummary::from_samples(&mut steady_samples),
        makespan_ms,
        throughput_centi_per_sec: total_plays * 100_000 / makespan_ms,
        provisioning_cache: eco.provisioning_cache_stats(),
        license_cache: eco.license_cache_stats(),
        decrypt_cache,
    }
}

/// One worker's closed/open loop: returns its latency samples and the
/// virtual span of its sequential chain (busy time plus interarrival
/// gaps).
fn run_worker(
    config: &LoadConfig,
    app: &OttApp,
    clock: &VirtualClock,
    failed: &AtomicU64,
    checkins: &AtomicU64,
    device: usize,
    worker: usize,
) -> (Vec<u64>, u64) {
    let warm = config.caches.any();
    let mut samples = Vec::with_capacity(config.plays_per_worker);
    let mut span_ms = 0u64;
    for iter in 0..config.plays_per_worker {
        if let LoadMode::Open { interarrival_ms } = config.mode {
            clock.advance_ms(interarrival_ms);
            span_ms += interarrival_ms;
        }
        let title = FLEET_TITLES[iter % FLEET_TITLES.len()];
        let lat = modeled_latency_ms(config.seed, device, worker, iter, warm);
        if app.play(title).is_err() {
            failed.fetch_add(1, Ordering::Relaxed);
        }
        clock.advance_ms(lat);
        observe_play(lat);
        samples.push(lat);
        span_ms += lat;
        // Periodic device check-in: re-runs the provisioning exchange,
        // which the certificate cache serves without RSA keygen.
        if iter % 3 == 2 {
            if app.reprovision().is_err() {
                failed.fetch_add(1, Ordering::Relaxed);
            } else {
                checkins.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    (samples, span_ms)
}

fn observe_play(lat_ms: u64) {
    if wideleak_telemetry::is_enabled() {
        wideleak_telemetry::observe("load.play.latency", Duration::from_millis(lat_ms));
        wideleak_telemetry::incr("load.plays");
    }
}

/// Sums decrypt-cache counters across the fleet. `None` when the cache
/// is disabled (every backend reports `None`).
fn sum_decrypt_stats(fleet: &[FleetDevice]) -> Option<DecryptCacheStats> {
    let mut total: Option<DecryptCacheStats> = None;
    for member in fleet {
        if let Some(s) = member.stack.cdm.oemcrypto().decrypt_cache_stats() {
            let t = total.get_or_insert_with(DecryptCacheStats::default);
            t.key_hits += s.key_hits;
            t.key_misses += s.key_misses;
            t.keystream_hits += s.keystream_hits;
            t.keystream_misses += s.keystream_misses;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_deterministic() {
        let config = LoadConfig::quick();
        let a = run_load(&config);
        let b = run_load(&config);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn cached_run_registers_hits_on_every_tier() {
        let report = run_load(&LoadConfig::quick());
        assert_eq!(report.failed_plays, 0);
        assert!(report.checkins > 0);
        let prov = report.provisioning_cache.expect("cert cache enabled");
        assert!(prov.hits > 0, "check-ins hit the cert cache: {prov:?}");
        let lic = report.license_cache.expect("license cache enabled");
        assert!(lic.hits > 0, "steady plays hit the license cache: {lic:?}");
        let dec = report.decrypt_cache.expect("decrypt cache enabled");
        assert!(dec.key_hits > 0, "repeat samples reuse key schedules: {dec:?}");
        assert!(
            report.steady_latency.p50_ms < report.warmup_latency.p50_ms,
            "warm plays are modeled faster than cold plays"
        );
    }

    #[test]
    fn uncached_run_reports_disabled_caches() {
        let config = LoadConfig { caches: CacheConfig::none(), ..LoadConfig::quick() };
        let report = run_load(&config);
        assert_eq!(report.failed_plays, 0);
        assert!(report.provisioning_cache.is_none());
        assert!(report.license_cache.is_none());
        assert!(report.decrypt_cache.is_none());
        assert!(report.render().contains("disabled"));
    }

    #[test]
    fn open_loop_interarrival_stretches_the_makespan() {
        let closed = run_load(&LoadConfig::quick());
        let open = run_load(&LoadConfig {
            mode: LoadMode::Open { interarrival_ms: 50 },
            ..LoadConfig::quick()
        });
        assert!(open.makespan_ms > closed.makespan_ms);
        assert!(open.throughput_centi_per_sec < closed.throughput_centi_per_sec);
    }

    #[test]
    fn tcp_fleet_matches_threaded_fleet_except_the_label() {
        let threaded = run_load(&LoadConfig::quick());
        let tcp = run_load(&LoadConfig { transport: TransportKind::Tcp, ..LoadConfig::quick() });
        assert_eq!(tcp.failed_plays, 0);
        // Same traffic, same modeled latencies — only the fleet line
        // differs, by the transport label.
        assert_eq!(threaded.render().replace("threaded binder", "tcp binder"), tcp.render());
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!((s.min_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms), (1, 50, 95, 99, 100));
        assert_eq!(s.mean_ms, 50);
    }
}
