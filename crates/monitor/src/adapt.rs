//! The adaptation study: DRM behaviour *under bandwidth adaptation*.
//!
//! For every (congestion scenario, app) cell a fresh ecosystem is booted
//! with a [`BandwidthConfig`] attached, a small fleet of clients plays
//! the study title adaptively, and the cell aggregates what the rate
//! controller and the DRM plane did: representation switches up/down,
//! licenses fetched (per-tier key rotation makes every switch a real
//! license round-trip for apps with visible key ids — and exactly one
//! open license for apps that hide them), rebuffer ratio, and the peak
//! license-renewal storm (most licenses landing in any one wall-clock
//! window across the fleet).
//!
//! Every client gets its own seeded link on a private local timeline, so
//! the whole report is a pure function of the seed — byte-identical
//! across runs, the same determinism contract as Table I and Q5.

use wideleak_device::catalog::DeviceModel;
use wideleak_ott::adapt::AdaptConfig;
use wideleak_ott::bandwidth::{BandwidthConfig, BandwidthSchedule};
use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

use crate::study::STUDY_TITLE;

/// Wall-clock window for the renewal-storm metric: the peak number of
/// license fetches landing inside any window of this width across the
/// cell's whole fleet.
pub const STORM_WINDOW_MS: u64 = 8_000;

/// One named congestion scenario the sweep applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionScenario {
    /// Stable scenario slug (also the report column header).
    pub name: &'static str,
    /// What the schedule simulates.
    pub description: &'static str,
    /// The bandwidth model attached to every ecosystem of this scenario.
    pub bandwidth: BandwidthConfig,
}

/// The sweep's congestion scenarios, in report-column order.
///
/// Against the demo ladder (540p = 1.08, 720p = 1.44, 1080p = 2.16
/// Mbps declared) each one exercises a different controller regime:
/// steady headroom (climb to the top), a mid-session constriction
/// (downswitch and stay), a full outage (stall, rebuffer, recover),
/// and an oscillating link (switch churn and license storms).
pub fn scenarios() -> Vec<CongestionScenario> {
    vec![
        CongestionScenario {
            name: "steady-3mbps",
            description: "constant 3 Mbps: headroom for the full ladder",
            bandwidth: BandwidthConfig::flat(3_000_000),
        },
        CongestionScenario {
            name: "step-down",
            description: "4 Mbps constricting to 1.2 Mbps at t=20s",
            bandwidth: BandwidthConfig {
                schedule: BandwidthSchedule::steps(vec![(0, 4_000_000), (20_000, 1_200_000)]),
                burst_bits: 2_000_000,
                spread_permille: 100,
            },
        },
        CongestionScenario {
            name: "outage-recovery",
            description: "2 Mbps with a dead link from t=16s to t=24s",
            bandwidth: BandwidthConfig {
                schedule: BandwidthSchedule::steps(vec![
                    (0, 2_000_000),
                    (16_000, 0),
                    (24_000, 2_000_000),
                ]),
                burst_bits: 2_000_000,
                spread_permille: 100,
            },
        },
        CongestionScenario {
            name: "oscillating",
            description: "2.5 Mbps and 1.0 Mbps alternating every 12s",
            bandwidth: BandwidthConfig {
                schedule: BandwidthSchedule::steps(vec![
                    (0, 2_500_000),
                    (12_000, 1_000_000),
                    (24_000, 2_500_000),
                    (36_000, 1_000_000),
                    (48_000, 2_500_000),
                ]),
                burst_bits: 2_000_000,
                spread_permille: 100,
            },
        },
    ]
}

/// One (scenario, app) cell: a small fleet's aggregated adaptation
/// behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptCell {
    /// Scenario slug.
    pub scenario: &'static str,
    /// App display name.
    pub app_name: String,
    /// Clients in the cell's fleet.
    pub clients: u64,
    /// Sessions that failed outright (should be zero: congestion is not
    /// a fault).
    pub failed: u64,
    /// Up-switches across the fleet.
    pub switches_up: u64,
    /// Down-switches across the fleet.
    pub switches_down: u64,
    /// Licenses fetched across the fleet.
    pub license_fetches: u64,
    /// Rebuffer time in permille of presentation time, fleet-wide.
    pub rebuffer_permille: u64,
    /// Peak licenses landing in any [`STORM_WINDOW_MS`] window.
    pub storm_peak: u64,
    /// Highest representation id any client reached (ladder order).
    pub peak_rep: String,
}

/// The full adaptation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptReport {
    /// The seed the report is a pure function of.
    pub seed: u64,
    /// Every cell, scenario-major in sweep order.
    pub cells: Vec<AdaptCell>,
}

impl AdaptReport {
    /// Looks one cell up.
    pub fn cell(&self, scenario: &str, app_name: &str) -> Option<&AdaptCell> {
        self.cells.iter().find(|c| c.scenario == scenario && c.app_name == app_name)
    }

    /// Total down-switches for a scenario across every app — the
    /// "quality degrades under constriction" headline number.
    pub fn downswitches(&self, scenario: &str) -> u64 {
        self.cells.iter().filter(|c| c.scenario == scenario).map(|c| c.switches_down).sum()
    }

    /// The worst renewal storm any cell of a scenario saw.
    pub fn storm_peak(&self, scenario: &str) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.scenario == scenario)
            .map(|c| c.storm_peak)
            .max()
            .unwrap_or(0)
    }
}

/// Bins license timestamps into [`STORM_WINDOW_MS`] windows and returns
/// the busiest window's count — the renewal-storm metric.
fn storm_peak(license_times_ms: &[u64]) -> u64 {
    let mut bins = std::collections::HashMap::new();
    for &t in license_times_ms {
        *bins.entry(t / STORM_WINDOW_MS).or_insert(0u64) += 1;
    }
    bins.values().copied().max().unwrap_or(0)
}

/// Runs the adaptation sweep: every congestion scenario against the
/// evaluated apps (`quick` limits the sweep to the first four apps and
/// smaller fleets/sessions for CI).
///
/// Determinism contract: the report is a pure function of `seed` — each
/// cell boots a fresh ecosystem with the scenario's bandwidth model and
/// the same seed, links are minted in a fixed order, and every link
/// advances a private local timeline.
pub fn run_adapt_study(seed: u64, quick: bool) -> AdaptReport {
    let _span = wideleak_telemetry::span!("adapt.run");
    let mut cells = Vec::new();
    for scenario in scenarios() {
        let _scenario_span = wideleak_telemetry::span!("adapt.scenario", name = scenario.name);
        let roster = Ecosystem::new(EcosystemConfig::fast_for_tests());
        let slugs: Vec<String> = roster.profiles().iter().map(|p| p.slug.to_owned()).collect();
        let take = if quick { 4 } else { slugs.len() };
        for slug in slugs.iter().take(take) {
            cells.push(run_cell(&scenario, slug, seed, quick));
        }
    }
    wideleak_telemetry::add("adapt.cells", cells.len() as u64);
    AdaptReport { seed, cells }
}

/// Runs one (scenario, app) cell on a fresh ecosystem: a small fleet of
/// clients, each with its own device stack and seeded link, playing the
/// study title adaptively in mint order.
fn run_cell(scenario: &CongestionScenario, slug: &str, seed: u64, quick: bool) -> AdaptCell {
    let mut config = EcosystemConfig::fast_for_tests();
    config.seed = seed;
    config.bandwidth = Some(scenario.bandwidth.clone());
    let eco = Ecosystem::new(config);
    let adapt_config = if quick { AdaptConfig::quick() } else { AdaptConfig::default() };
    let clients: u64 = if quick { 2 } else { 3 };

    let mut cell = AdaptCell {
        scenario: scenario.name,
        app_name: eco.profile(slug).expect("known slug").name.to_owned(),
        clients,
        failed: 0,
        switches_up: 0,
        switches_down: 0,
        license_fetches: 0,
        rebuffer_permille: 0,
        storm_peak: 0,
        peak_rep: String::new(),
    };
    let mut fleet_license_times: Vec<u64> = Vec::new();
    let mut total_rebuffer_ms = 0u64;
    let mut total_played_ms = 0u64;
    for client in 0..clients {
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, slug, &format!("adapt-probe-{client}"));
        let mut link = eco.adaptive_link();
        match app.play_adaptive(STUDY_TITLE, &adapt_config, &mut link) {
            Ok(outcome) => {
                cell.switches_up += outcome.switches_up;
                cell.switches_down += outcome.switches_down;
                cell.license_fetches += outcome.license_fetches;
                total_rebuffer_ms += outcome.rebuffer_ms;
                total_played_ms += outcome.played_ms;
                fleet_license_times.extend(outcome.license_times_ms.iter().copied());
                // Rep ids sort "video-1080p" < "video-540p" textually;
                // compare by id length first so 4-digit heights win.
                for rep in &outcome.rep_sequence {
                    if (rep.len(), rep.as_str()) > (cell.peak_rep.len(), cell.peak_rep.as_str()) {
                        cell.peak_rep = rep.clone();
                    }
                }
            }
            Err(_) => cell.failed += 1,
        }
    }
    if total_played_ms > 0 {
        cell.rebuffer_permille =
            u64::try_from(u128::from(total_rebuffer_ms) * 1000 / u128::from(total_played_ms))
                .unwrap_or(u64::MAX);
    }
    cell.storm_peak = storm_peak(&fleet_license_times);
    cell
}

/// Renders the adaptation report as an ASCII table — one row per app,
/// one column per scenario, each cell
/// `{up}up/{down}dn {lic}lic reb{permille} storm{peak}` — followed by
/// per-scenario headline lines. Integer math only: byte-identical per
/// seed.
pub fn render_adapt(report: &AdaptReport) -> String {
    let mut apps: Vec<&str> = Vec::new();
    for cell in &report.cells {
        if !apps.contains(&cell.app_name.as_str()) {
            apps.push(&cell.app_name);
        }
    }
    let columns: Vec<&str> = scenarios().iter().map(|s| s.name).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["OTT".to_owned()];
    header.extend(columns.iter().map(|c| (*c).to_owned()));
    rows.push(header);
    for app in &apps {
        let mut row = vec![(*app).to_owned()];
        for col in &columns {
            row.push(report.cell(col, app).map_or_else(
                || "-".to_owned(),
                |c| {
                    if c.failed > 0 {
                        format!("{} of {} failed", c.failed, c.clients)
                    } else {
                        format!(
                            "{}up/{}dn {}lic reb{} storm{}",
                            c.switches_up,
                            c.switches_down,
                            c.license_fetches,
                            c.rebuffer_permille,
                            c.storm_peak
                        )
                    }
                },
            ));
        }
        rows.push(row);
    }

    let cols = rows[0].len();
    let widths: Vec<usize> =
        (0..cols).map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0)).collect();
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", cell, width = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
    }
    out.push('\n');
    out.push_str(&format!(
        "seed {} | reb = rebuffer permille of presentation time | storm = peak licenses in any {}s window\n",
        report.seed,
        STORM_WINDOW_MS / 1000
    ));
    for col in &columns {
        out.push_str(&format!(
            "{col}: {} downswitches, storm peak {}\n",
            report.downswitches(col),
            report.storm_peak(col)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_distinct_and_cover_the_regimes() {
        let list = scenarios();
        assert_eq!(list.len(), 4);
        let mut names: Vec<_> = list.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
        // One scenario must actually constrict below the 720p tier and
        // one must hold headroom above the 1080p tier.
        assert!(list.iter().any(|s| s.bandwidth.schedule.min_capacity() < 1_440_000));
        assert!(list.iter().any(|s| s.bandwidth.schedule.min_capacity() > 2_160_000));
    }

    #[test]
    fn storm_peak_bins_by_window() {
        assert_eq!(storm_peak(&[]), 0);
        // Three licenses inside one 8s window, one far away.
        assert_eq!(storm_peak(&[100, 4_000, 7_900, 60_000]), 3);
    }

    #[test]
    fn report_helpers_aggregate_per_scenario() {
        let cell = |scenario, app: &str, down, storm| AdaptCell {
            scenario,
            app_name: app.to_owned(),
            clients: 2,
            failed: 0,
            switches_up: 1,
            switches_down: down,
            license_fetches: 4,
            rebuffer_permille: 0,
            storm_peak: storm,
            peak_rep: "video-720p".into(),
        };
        let report = AdaptReport {
            seed: 1,
            cells: vec![cell("step-down", "A", 3, 2), cell("step-down", "B", 2, 5)],
        };
        assert_eq!(report.downswitches("step-down"), 5);
        assert_eq!(report.storm_peak("step-down"), 5);
        assert_eq!(report.downswitches("steady-3mbps"), 0);
    }
}
