//! The static-analysis prong of the study's two-pronged methodology.
//!
//! "First, we decompile the Java classes of the evaluated OTT apps to
//! identify some of the included Android classes. More specifically, we
//! scan all calls to MediaDrm and MediaCrypto methods... However, we are
//! aware that some apps might include some dead code. Thus, in order to
//! err on the side of soundness (i.e., low false positives), we monitored
//! Widevine component functions... while playing protected content."
//! (§IV-B)
//!
//! This module is that first prong: a class-reference scanner over the
//! (simulated) decompiled APK, whose hits are *hypotheses* the dynamic
//! hook analysis must confirm.

use wideleak_ott::apps::Apk;

/// One statically detected DRM integration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DrmIntegration {
    /// The Android platform DRM API (MediaDrm/MediaCrypto/MediaCodec).
    AndroidMediaDrm,
    /// The non-DASH generic crypto session API.
    CryptoSession,
    /// A vendored/embedded Widevine client.
    EmbeddedWidevine,
    /// Microsoft PlayReady classes.
    PlayReady,
    /// Anything else that pattern-matched a DRM-ish class path.
    Other(String),
}

/// The result of statically scanning one APK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticScan {
    /// Every DRM integration the bytecode *references* (live or dead —
    /// statically indistinguishable).
    pub integrations: Vec<DrmIntegration>,
}

impl StaticScan {
    /// Whether the platform DRM API is referenced at all.
    pub fn references_media_drm(&self) -> bool {
        self.integrations.contains(&DrmIntegration::AndroidMediaDrm)
    }
}

/// Scans a decompiled APK's class references for DRM integrations.
pub fn scan_apk(apk: &Apk) -> StaticScan {
    let mut integrations = Vec::new();
    for reference in apk.visible_references() {
        let hit = if reference.starts_with("android.media.MediaDrm$CryptoSession") {
            Some(DrmIntegration::CryptoSession)
        } else if reference.starts_with("android.media.MediaDrm")
            || reference.starts_with("android.media.MediaCrypto")
        {
            Some(DrmIntegration::AndroidMediaDrm)
        } else if reference.contains("EmbeddedWidevine") {
            Some(DrmIntegration::EmbeddedWidevine)
        } else if reference.contains("playready") || reference.contains("PlayReady") {
            Some(DrmIntegration::PlayReady)
        } else if reference.to_lowercase().contains("drm") {
            Some(DrmIntegration::Other(reference.to_owned()))
        } else {
            None
        };
        if let Some(h) = hit {
            if !integrations.contains(&h) {
                integrations.push(h);
            }
        }
    }
    StaticScan { integrations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_ott::apps::evaluated_apps;

    #[test]
    fn every_evaluated_app_references_media_drm() {
        for profile in evaluated_apps() {
            let scan = scan_apk(&profile.apk());
            assert!(scan.references_media_drm(), "{}", profile.name);
        }
    }

    #[test]
    fn netflix_references_the_crypto_session_api() {
        let netflix = &evaluated_apps()[0];
        let scan = scan_apk(&netflix.apk());
        assert!(scan.integrations.contains(&DrmIntegration::CryptoSession));
    }

    #[test]
    fn amazon_references_an_embedded_client() {
        let amazon = evaluated_apps().into_iter().find(|p| p.slug == "amazon").unwrap();
        let scan = scan_apk(&amazon.apk());
        assert!(scan.integrations.contains(&DrmIntegration::EmbeddedWidevine));
    }

    #[test]
    fn static_analysis_over_reports_dead_code() {
        // The classic false positive: myCANAL's bytecode still references
        // PlayReady classes it never executes.
        let mycanal = evaluated_apps().into_iter().find(|p| p.slug == "mycanal").unwrap();
        let scan = scan_apk(&mycanal.apk());
        assert!(
            scan.integrations.contains(&DrmIntegration::PlayReady),
            "the static prong cannot tell it is dead code"
        );
        // The APK model itself knows (dynamic analysis will refute it).
        assert!(mycanal.apk().dead_code_references.iter().any(|r| r.contains("playready")));
    }

    #[test]
    fn empty_apk_scans_clean() {
        let apk = Apk { live_references: vec![], dead_code_references: vec![] };
        assert!(scan_apk(&apk).integrations.is_empty());
        assert!(!scan_apk(&apk).references_media_drm());
    }
}
