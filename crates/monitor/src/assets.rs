//! Asset probing: download a track's URIs and determine its protection
//! status, the way the paper does ("we just rely on video or audio
//! players to read the downloaded files").

use wideleak_bmff::fragment::InitSegment;
use wideleak_bmff::types::KeyId;
use wideleak_dash::mpd::{ContentType, Mpd};
use wideleak_device::net::RemoteEndpoint;

use crate::classify::Protection;
use crate::MonitorError;

/// Downloads a URL straight from the CDN (the researcher's own transport,
/// no pinning involved).
pub fn fetch(endpoint: &dyn RemoteEndpoint, path: &str) -> Result<Vec<u8>, MonitorError> {
    endpoint.handle(path, &[]).map_err(|e| MonitorError::Probe { what: format!("{path}: {e}") })
}

/// Probes the protection status of a media track by its init segment.
pub fn probe_init_segment(bytes: &[u8]) -> Protection {
    match InitSegment::from_bytes(bytes) {
        Ok(init) if init.is_protected() => Protection::Encrypted,
        Ok(_) => Protection::Clear,
        Err(_) => Protection::Unknown,
    }
}

/// Probes subtitles: readable ASCII means clear.
pub fn probe_subtitles(bytes: &[u8]) -> Protection {
    if !bytes.is_empty() && bytes.is_ascii() {
        Protection::Clear
    } else {
        Protection::Encrypted
    }
}

/// Protection findings for one title's assets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssetFindings {
    /// Video track protection.
    pub video: Protection,
    /// Audio track protection.
    pub audio: Protection,
    /// Subtitle track protection ([`Protection::Unknown`] when the URI
    /// could not be discovered).
    pub subtitles: Protection,
}

/// Downloads and probes every asset class referenced by an MPD.
pub fn probe_assets(
    endpoint: &dyn RemoteEndpoint,
    mpd: &Mpd,
) -> Result<AssetFindings, MonitorError> {
    let mut findings = AssetFindings {
        video: Protection::Unknown,
        audio: Protection::Unknown,
        subtitles: Protection::Unknown,
    };
    for set in mpd.adaptation_sets() {
        let Some(rep) = set.representations.first() else { continue };
        match set.content_type {
            ContentType::Video | ContentType::Audio => {
                if rep.init_url.is_empty() {
                    continue;
                }
                let bytes = fetch(endpoint, &rep.init_url)?;
                let protection = probe_init_segment(&bytes);
                match set.content_type {
                    ContentType::Video => findings.video = protection,
                    ContentType::Audio => findings.audio = protection,
                    ContentType::Text => unreachable!("matched above"),
                }
            }
            ContentType::Text => {
                let Some(url) = rep.segment_urls.first() else { continue };
                let bytes = fetch(endpoint, url)?;
                findings.subtitles = probe_subtitles(&bytes);
            }
        }
    }
    Ok(findings)
}

/// Cross-checks the protection metadata of one presentation: for every
/// protected track the `pssh` key-id list must contain the `tenc`
/// default KID, and when the MPD declares a `default_KID` it must agree
/// with the container. The paper's key-id census (§IV-B "we note the used
/// key IDs for each content by parsing the MPD files and their related
/// OTT-specific metadata") relies on these layers agreeing.
///
/// Returns `true` when every downloadable protected track is consistent.
///
/// # Errors
///
/// Propagates download failures; malformed inits count as inconsistent.
pub fn probe_metadata_consistency(
    endpoint: &dyn RemoteEndpoint,
    mpd: &Mpd,
) -> Result<bool, MonitorError> {
    for set in mpd.adaptation_sets() {
        if set.content_type == ContentType::Text {
            continue;
        }
        for rep in &set.representations {
            if rep.init_url.is_empty() {
                continue;
            }
            let bytes = fetch(endpoint, &rep.init_url)?;
            let Ok(init) = InitSegment::from_bytes(&bytes) else { return Ok(false) };
            let Some(tenc) = &init.tenc else { continue };
            let kid = KeyId(tenc.default_kid.0);
            // pssh must advertise the tenc KID.
            if !init.pssh.is_empty() && !init.pssh.iter().any(|p| p.key_ids.contains(&kid)) {
                return Ok(false);
            }
            // MPD metadata (when present) must agree with the container.
            let declared = rep.default_kid().or_else(|| {
                set.content_protections.iter().find_map(|cp| cp.default_kid.as_deref())
            });
            if let Some(hex) = declared {
                match KeyId::from_hex(hex) {
                    Ok(mpd_kid) if mpd_kid == kid => {}
                    _ => return Ok(false),
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_bmff::fragment::TrackKind;
    use wideleak_bmff::types::{KeyId, Tenc};
    use wideleak_bmff::FourCc;

    #[test]
    fn probe_protected_init() {
        let init = InitSegment::protected(
            1,
            TrackKind::Video,
            FourCc(*b"cenc"),
            Tenc::cenc(KeyId([1; 16])),
            vec![],
        );
        assert_eq!(probe_init_segment(&init.to_bytes()), Protection::Encrypted);
    }

    #[test]
    fn probe_clear_init() {
        let init = InitSegment::clear(1, TrackKind::Audio);
        assert_eq!(probe_init_segment(&init.to_bytes()), Protection::Clear);
    }

    #[test]
    fn probe_garbage_is_unknown() {
        assert_eq!(probe_init_segment(&[1, 2, 3]), Protection::Unknown);
    }

    #[test]
    fn probe_subtitle_ascii() {
        assert_eq!(probe_subtitles(b"WEBVTT\nhello"), Protection::Clear);
        assert_eq!(probe_subtitles(&[0xde, 0xad, 0xbe]), Protection::Encrypted);
        assert_eq!(probe_subtitles(&[]), Protection::Encrypted);
    }
}
