//! The sharded measurement campaign: a fleet of `wideleak serve
//! --worker` processes re-deriving the Table-I compliance matrix over
//! the generated device catalog, merged into one *exact* report.
//!
//! This is ROADMAP item 4 — the step from "one process simulating a
//! fleet" to "a fleet simulating a fleet". The coordinator
//! ([`run_campaign`]) splits the catalog id range `0..spec.devices`
//! into contiguous shards (the same [`partition`] the load generator
//! uses for its drivers), spawns one worker process per shard, drives
//! each over a wire-v3 campaign control channel
//! ([`CampaignCall`]/[`CampaignReply`]), and merges the
//! [`ShardReport`]s it gets back.
//!
//! **Shard-count invariance** is the load-bearing property: the merged
//! report is a pure function of (spec, seed, catalog). It holds
//! because every report-visible value derives only from the campaign
//! seed, the device id, and the app — never from the shard id, the
//! worker count, or wall clocks:
//!
//! - the compliance cell of a (device, app) pair is [`derive_cell`], a
//!   pure classification over the catalog model and the app profile;
//! - its latency sample is [`modeled_latency_ms`], seeded by
//!   `det_hash(campaign_seed, ...)` over (device id, app index);
//! - which devices get a *real* end-to-end playback (validating the
//!   derived cells against actual ecosystem behaviour) is a seed-hash
//!   over the device id, not a per-shard counter;
//! - merges are exact: histogram bucket-sums for percentiles, count
//!   sums plus min-device-id exemplars for cells, name-wise sums for
//!   counters — all commutative, so arrival order cannot show through.
//!
//! The per-shard worker seed `det_hash(spec.seed, shard_id)` exists
//! for replayability of a single shard; it seeds the worker's own
//! ecosystem (RSA keys and the like) and nothing report-visible.
//!
//! Worker processes are owned by [`WorkerProcess`] drop guards
//! (kill-on-drop plus reap), and each worker also watches its stdin —
//! a pipe the coordinator holds open — so even a SIGKILLed coordinator
//! leaves no orphans: the pipe closes, the worker exits.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use wideleak_android_drm::campaign::{
    AppCells, CampaignCall, CampaignError, CampaignHandler, CampaignReply, CampaignSpec,
    LatencyHistogram, ShardAssignment, ShardReport, CELL_KINDS,
};
use wideleak_android_drm::wire::{
    decode_frame, encode_frame, frame_len, FrameBody, HEADER_LEN, VERSION,
};
use wideleak_device::catalog::{DeviceModel, SecurityLevel};
use wideleak_faults::det_hash;
use wideleak_load::{partition, LatencySummary};
use wideleak_ott::apps::AppProfile;
use wideleak_ott::content::L3_MAX_HEIGHT;
use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak_ott::provisioning::RevocationPolicy;
use wideleak_ott::OttError;

/// Salt mixed into the campaign seed when electing devices for real
/// playback validation, so the election is independent of the latency
/// model's hash stream.
const SAMPLE_SALT: u64 = 0x5749_4445_4c45_414b; // "WIDELEAK"

/// Salt for the modeled latency jitter stream.
const LATENCY_SALT: u64 = 0x4c41_5445_4e43_5953;

/// How long the coordinator waits on a worker's control socket before
/// declaring the shard hung. Generous — a real shard finishes in
/// seconds; a killed worker produces an immediate EOF, not a timeout.
const SHARD_DEADLINE: Duration = Duration::from_secs(600);

/// A compliance cell in the widened Table-I vocabulary. The `u8` repr
/// indices match the wire-level [`CELL_KINDS`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CellKind {
    /// Platform Widevine plays at HD (L1 hardware).
    PlaysHd = 0,
    /// Platform Widevine plays capped at sub-HD (L3, by age or hardware).
    PlaysSd = 1,
    /// The app's embedded DRM plays instead of platform Widevine
    /// (Amazon's L3 fallback).
    Embedded = 2,
    /// Provisioning refused: the CDM version is revoked and the app
    /// enforces revocation.
    Refused = 3,
    /// The app never touches platform Widevine (custom DRM everywhere).
    Custom = 4,
}

impl CellKind {
    /// Every kind, in wire index order.
    pub const ALL: [CellKind; CELL_KINDS] = [
        CellKind::PlaysHd,
        CellKind::PlaysSd,
        CellKind::Embedded,
        CellKind::Refused,
        CellKind::Custom,
    ];

    /// The column label the report renders.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CellKind::PlaysHd => "playsHD",
            CellKind::PlaysSd => "playsSD",
            CellKind::Embedded => "embedded",
            CellKind::Refused => "refused",
            CellKind::Custom => "custom",
        }
    }

    /// The wire-level cell index.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Classifies the (device, app) compliance cell *without running a
/// playback* — a pure function mirroring `OttApp::play` semantics, so
/// the campaign can cover thousands of devices while the sampled real
/// playbacks keep the mirror honest (`sample_mismatches` stays 0).
#[must_use]
pub fn derive_cell(
    model: &DeviceModel,
    profile: &AppProfile,
    policy: &RevocationPolicy,
) -> CellKind {
    if profile.always_custom_drm {
        return CellKind::Custom;
    }
    // The embedded-DRM path short-circuits provisioning, exactly as
    // `play` consults `uses_embedded_drm` before `ensure_provisioned`.
    if model.security_level == SecurityLevel::L3 && profile.custom_drm_on_l3 {
        return CellKind::Embedded;
    }
    if profile.enforce_revocation && policy.is_revoked(model.cdm_version) {
        return CellKind::Refused;
    }
    if model.security_level == SecurityLevel::L1 {
        CellKind::PlaysHd
    } else {
        CellKind::PlaysSd
    }
}

/// The modeled license-path latency of one (device, app) playback, in
/// milliseconds: a per-cell base plus seeded jitter. A pure function of
/// (campaign seed, device id, app index) — the sharding can never show
/// through — and bounded far below the histogram's bucket cap, so the
/// exact-merge property holds with no clamping.
#[must_use]
pub fn modeled_latency_ms(seed: u64, device_id: u64, app_idx: usize, cell: CellKind) -> u64 {
    let base = match cell {
        CellKind::PlaysHd => 34,
        CellKind::PlaysSd => 27,
        CellKind::Embedded => 18,
        CellKind::Refused => 6,
        CellKind::Custom => 9,
    };
    let salt = device_id.wrapping_mul(64).wrapping_add(app_idx as u64);
    base + det_hash(seed ^ LATENCY_SALT, salt) % 13
}

/// Whether this device id is elected for a real end-to-end playback
/// validation. Seed-hashed over the device id alone, so the election is
/// identical no matter which shard the device lands in.
#[must_use]
pub fn is_sampled(spec: &CampaignSpec, device_id: u64) -> bool {
    spec.sample_every > 0
        && det_hash(spec.seed ^ SAMPLE_SALT, device_id).is_multiple_of(spec.sample_every)
}

/// Resolves the spec's app slugs against the evaluated-app profiles,
/// preserving spec order (or the canonical evaluated order when the
/// spec names none).
///
/// # Errors
///
/// [`CampaignError::Worker`] for an unknown slug.
pub fn resolve_apps(spec: &CampaignSpec) -> Result<Vec<AppProfile>, CampaignError> {
    let all = wideleak_ott::apps::evaluated_apps();
    if spec.apps.is_empty() {
        return Ok(all);
    }
    spec.apps
        .iter()
        .map(|slug| {
            all.iter()
                .find(|p| p.slug == slug)
                .cloned()
                .ok_or_else(|| CampaignError::Worker { what: format!("unknown app slug {slug}") })
        })
        .collect()
}

/// Runs one shard of a campaign in this process: derives the compliance
/// cell and latency sample for every (device, app) pair in the range,
/// and validates the derivation with real ecosystem playbacks on the
/// seed-elected sample devices.
///
/// # Errors
///
/// [`CampaignError::Worker`] for an invalid assignment or unknown app.
pub fn run_shard(
    spec: &CampaignSpec,
    shard: ShardAssignment,
) -> Result<ShardReport, CampaignError> {
    if shard.start > shard.end || shard.end > spec.devices {
        return Err(CampaignError::Worker {
            what: format!(
                "shard {} range {}..{} outside campaign 0..{}",
                shard.shard_id, shard.start, shard.end, spec.devices
            ),
        });
    }
    let apps = resolve_apps(spec)?;
    let policy = RevocationPolicy::default();
    // The per-shard seed makes a single shard replayable in isolation;
    // it feeds the worker's private ecosystem only, never the report.
    let shard_seed = det_hash(spec.seed, u64::from(shard.shard_id));
    let needs_eco = (shard.start..shard.end).any(|id| is_sampled(spec, id));
    let eco = needs_eco.then(|| {
        Ecosystem::new(EcosystemConfig {
            seed: shard_seed,
            rsa_bits: spec.rsa_bits as usize,
            ..EcosystemConfig::default()
        })
    });

    let mut cells: Vec<AppCells> = apps.iter().map(|p| AppCells::new(p.slug)).collect();
    let mut latency = LatencyHistogram::new();
    let mut sampled_plays = 0u64;
    let mut sample_mismatches = 0u64;

    for device_id in shard.start..shard.end {
        if spec.kill_at_device == Some(device_id) {
            // Test-only fault hook: die exactly as an OOM-killed or
            // crashed worker would, mid-shard, with no goodbye frame.
            std::process::exit(3);
        }
        let model = DeviceModel::catalog(device_id);
        let sampled = is_sampled(spec, device_id);
        for (app_idx, profile) in apps.iter().enumerate() {
            let kind = derive_cell(&model, profile, &policy);
            cells[app_idx].record(kind.index(), device_id);
            latency.record(modeled_latency_ms(spec.seed, device_id, app_idx, kind));
            if let (true, Some(eco)) = (sampled, &eco) {
                // A fresh stack per (device, app): platform provisioning
                // state is per-install here, so an enforcing app always
                // exercises the provisioning refusal the cell predicts
                // instead of riding a sibling app's provisioned device.
                let stack = eco.boot_device(model.clone(), false);
                let app = eco.install_app(&stack, profile.slug, "campaign");
                let observed = classify_play(&app.play("title-001"));
                sampled_plays += 1;
                if observed != Some(kind) {
                    sample_mismatches += 1;
                }
                wideleak_telemetry::incr("campaign.plays.sampled");
            }
        }
    }

    let devices = shard.end - shard.start;
    wideleak_telemetry::incr("campaign.shards.run");
    Ok(ShardReport {
        shard_id: shard.shard_id,
        start: shard.start,
        end: shard.end,
        cells,
        latency,
        sampled_plays,
        sample_mismatches,
        counters: vec![
            ("campaign.cells.derived".into(), devices * apps.len() as u64),
            ("campaign.devices".into(), devices),
            ("campaign.plays.mismatched".into(), sample_mismatches),
            ("campaign.plays.sampled".into(), sampled_plays),
        ],
    })
}

/// Maps a real playback outcome into the cell vocabulary; `None` for
/// outcomes the derivation never predicts (always a mismatch).
fn classify_play(
    outcome: &Result<wideleak_ott::apps::PlaybackOutcome, OttError>,
) -> Option<CellKind> {
    match outcome {
        Ok(o) if !o.used_platform_widevine => Some(CellKind::Embedded),
        Ok(o) if o.resolution.1 > L3_MAX_HEIGHT => Some(CellKind::PlaysHd),
        Ok(_) => Some(CellKind::PlaysSd),
        Err(OttError::DeviceRevoked { .. }) => Some(CellKind::Refused),
        Err(_) => None,
    }
}

/// The worker-process side of the control channel: answers `Hello`,
/// runs `RunShard` via [`run_shard`], and flips a flag on `Shutdown`
/// that the serve loop polls to exit.
#[derive(Debug, Default)]
pub struct ShardRunner {
    shutdown: AtomicBool,
}

impl ShardRunner {
    /// A fresh runner with the shutdown flag clear.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a coordinator asked this worker to exit.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

impl CampaignHandler for ShardRunner {
    fn handle(&self, call: CampaignCall) -> Result<CampaignReply, CampaignError> {
        match call {
            CampaignCall::Hello => {
                Ok(CampaignReply::HelloAck { pid: std::process::id(), wire_version: VERSION })
            }
            CampaignCall::RunShard { spec, shard } => {
                run_shard(&spec, shard).map(CampaignReply::ShardDone)
            }
            CampaignCall::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                Ok(CampaignReply::ShuttingDown)
            }
        }
    }
}

/// How to launch a worker process: the program plus any arguments ahead
/// of the `serve --worker` subcommand the spawner appends.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// The binary to run (normally the running `wideleak` itself).
    pub program: PathBuf,
    /// Arguments placed before `serve --worker`.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// The running executable as the worker program — the normal case,
    /// where `wideleak campaign` spawns copies of itself.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spawn`] when the executable path is unknown.
    pub fn current_exe() -> Result<Self, CampaignError> {
        let program = std::env::current_exe()
            .map_err(|e| CampaignError::Spawn { what: format!("current_exe: {e}") })?;
        Ok(WorkerCommand { program, args: Vec::new() })
    }
}

/// One spawned worker process, owned as a drop guard: dropping the
/// guard kills the child and reaps it, so a failed test, a panic, or an
/// early coordinator return never leaves an orphaned `wideleak serve`
/// behind. (The worker additionally watches the stdin pipe this guard
/// holds open, so even an unceremoniously killed coordinator takes its
/// workers down with it.)
#[derive(Debug)]
pub struct WorkerProcess {
    child: Child,
    addr: String,
}

impl WorkerProcess {
    /// Spawns a worker and waits for its `WORKER_READY <addr>` line.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spawn`] when the process cannot be started or
    /// never reports ready.
    pub fn spawn(cmd: &WorkerCommand) -> Result<Self, CampaignError> {
        let mut child = Command::new(&cmd.program)
            .args(&cmd.args)
            .arg("serve")
            .arg("--worker")
            .arg("127.0.0.1:0")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| CampaignError::Spawn {
                what: format!("{}: {e}", cmd.program.display()),
            })?;
        let stdout = child
            .stdout
            .take()
            .ok_or(CampaignError::Spawn { what: "worker stdout not captured".into() })?;
        let mut guard = WorkerProcess { child, addr: String::new() };
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| CampaignError::Spawn { what: format!("reading ready line: {e}") })?;
        let addr = line
            .strip_prefix("WORKER_READY ")
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| CampaignError::Spawn { what: format!("bad ready line {line:?}") })?;
        guard.addr = addr.to_owned();
        Ok(guard)
    }

    /// The worker's control-channel address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The worker's OS process id.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.child.id()
    }
}

impl Drop for WorkerProcess {
    fn drop(&mut self) {
        // Kill-on-drop plus reap: an already-exited child makes kill a
        // no-op error, and wait still collects the zombie either way.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A blocking control-channel client over one worker's TCP socket.
struct ControlChannel {
    stream: TcpStream,
    shard_id: u32,
}

impl ControlChannel {
    fn connect(addr: &str, shard_id: u32) -> Result<Self, CampaignError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CampaignError::Spawn { what: format!("connect {addr}: {e}") })?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(SHARD_DEADLINE));
        Ok(ControlChannel { stream, shard_id })
    }

    /// One call, one reply. Any transport failure — EOF from a dead
    /// worker included — is the typed [`CampaignError::ShardLost`].
    fn call(&mut self, call: CampaignCall) -> Result<CampaignReply, CampaignError> {
        let lost = |_| CampaignError::ShardLost { shard_id: self.shard_id };
        self.stream.write_all(&encode_frame(&FrameBody::CampaignCall(call))).map_err(lost)?;
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header).map_err(lost)?;
        let total = frame_len(&header)?;
        let mut frame = vec![0u8; total];
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.stream.read_exact(&mut frame[HEADER_LEN..]).map_err(lost)?;
        match decode_frame(&frame)? {
            (FrameBody::CampaignReply(reply), _) => reply,
            _ => Err(CampaignError::Protocol {
                what: "non-campaign frame on control channel".into(),
            }),
        }
    }
}

/// The merged outcome of a whole campaign: a pure function of
/// (spec, seed, catalog) — shard count, scheduling, and reply order
/// can never show through, which the differential battery proves by
/// diffing rendered bytes across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The spec the campaign ran.
    pub spec: CampaignSpec,
    /// Merged per-app compliance cells over the whole catalog range.
    pub cells: Vec<AppCells>,
    /// Merged latency histogram (exact bucket sums).
    pub latency: LatencyHistogram,
    /// Real playbacks run across all shards.
    pub sampled_plays: u64,
    /// Sampled playbacks disagreeing with the derived cell (expect 0).
    pub sample_mismatches: u64,
    /// Name-summed per-shard counters.
    pub counters: Vec<(String, u64)>,
}

/// Merges per-shard reports into one campaign report. Validates that
/// the shards tile `0..spec.devices` exactly, then folds in ascending
/// shard order — the fold operations are commutative anyway, which is
/// precisely why the result is arrival-order-independent.
///
/// # Errors
///
/// [`CampaignError::Protocol`] when the shard ranges do not tile the
/// campaign range or an app list disagrees.
pub fn merge_reports(
    spec: &CampaignSpec,
    mut shards: Vec<ShardReport>,
) -> Result<CampaignReport, CampaignError> {
    shards.sort_by_key(|s| s.shard_id);
    let mut next_start = 0u64;
    for shard in &shards {
        if shard.start != next_start {
            return Err(CampaignError::Protocol {
                what: format!(
                    "shard {} starts at {}, expected {next_start}",
                    shard.shard_id, shard.start
                ),
            });
        }
        next_start = shard.end;
    }
    if next_start != spec.devices {
        return Err(CampaignError::Protocol {
            what: format!("shards cover 0..{next_start}, campaign needs 0..{}", spec.devices),
        });
    }

    let apps = resolve_apps(spec)?;
    let mut cells: Vec<AppCells> = apps.iter().map(|p| AppCells::new(p.slug)).collect();
    let mut latency = LatencyHistogram::new();
    let mut sampled_plays = 0u64;
    let mut sample_mismatches = 0u64;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for shard in &shards {
        if shard.cells.len() != cells.len()
            || shard.cells.iter().zip(&cells).any(|(a, b)| a.app != b.app)
        {
            return Err(CampaignError::Protocol {
                what: format!("shard {} reported a different app list", shard.shard_id),
            });
        }
        for (merged, theirs) in cells.iter_mut().zip(&shard.cells) {
            merged.merge(theirs);
        }
        latency.merge(&shard.latency);
        sampled_plays += shard.sampled_plays;
        sample_mismatches += shard.sample_mismatches;
        for (name, value) in &shard.counters {
            *counters.entry(name.clone()).or_insert(0) += value;
        }
    }
    Ok(CampaignReport {
        spec: spec.clone(),
        cells,
        latency,
        sampled_plays,
        sample_mismatches,
        counters: counters.into_iter().collect(),
    })
}

impl CampaignReport {
    /// Renders the deterministic ASCII report. Deliberately excludes
    /// everything sharding-dependent (worker count, pids, wall time):
    /// the CI diff job and the differential test compare these bytes
    /// across worker counts.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== wideleak campaign report ==\n");
        out.push_str(&format!(
            "spec:    {} devices x {} apps  (seed {}, sample every {}, rsa {})\n",
            self.spec.devices,
            self.cells.len(),
            self.spec.seed,
            self.spec.sample_every,
            self.spec.rsa_bits,
        ));
        out.push_str("\ncompliance matrix (devices per cell):\n");
        out.push_str(&format!("  {:<10}", "app"));
        for kind in CellKind::ALL {
            out.push_str(&format!(" {:>9}", kind.label()));
        }
        out.push_str(&format!(" {:>14}\n", "first refused"));
        for cells in &self.cells {
            out.push_str(&format!("  {:<10}", cells.app));
            for kind in CellKind::ALL {
                out.push_str(&format!(" {:>9}", cells.counts[kind.index()]));
            }
            match cells.exemplars[CellKind::Refused.index()] {
                Some(id) => out.push_str(&format!(" {:>14}\n", format!("device {id}"))),
                None => out.push_str(&format!(" {:>14}\n", "-")),
            }
        }
        let l = LatencySummary::from_histogram(&self.latency);
        out.push_str(&format!(
            "\nlicense-path latency (modeled ms): count {} min {} mean {} p50 {} p95 {} p99 {} max {}\n",
            l.count, l.min_ms, l.mean_ms, l.p50_ms, l.p95_ms, l.p99_ms, l.max_ms
        ));
        out.push_str(&format!(
            "validation: {} sampled real playbacks, {} mismatches vs derived cells\n",
            self.sampled_plays, self.sample_mismatches
        ));
        out.push_str("\ncounters:\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<26} {value}\n"));
        }
        out
    }
}

/// Coordinator tuning: the spec plus how many worker processes to
/// shard it across.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// What to measure.
    pub spec: CampaignSpec,
    /// Worker processes to spawn (min 1). Any value yields the same
    /// report — that is the campaign's defining invariant.
    pub workers: usize,
}

impl CampaignConfig {
    /// A quick configuration for tests and CI smoke: a small catalog
    /// slice with sampling dense enough to exercise real playbacks.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            spec: CampaignSpec {
                seed,
                devices: 48,
                apps: Vec::new(),
                sample_every: 24,
                rsa_bits: 768,
                kill_at_device: None,
            },
            workers: 2,
        }
    }

    /// The full-catalog configuration: thousands of generated devices,
    /// sparser sampling.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        CampaignConfig {
            spec: CampaignSpec {
                seed,
                devices: 4096,
                apps: Vec::new(),
                sample_every: 512,
                rsa_bits: 768,
                kill_at_device: None,
            },
            workers: 4,
        }
    }
}

/// Runs a campaign end to end: spawns `config.workers` worker
/// processes, fans the shard assignments out, collects and merges the
/// shard reports, and shuts the workers down.
///
/// # Errors
///
/// [`CampaignError::Spawn`] when a worker cannot be started,
/// [`CampaignError::ShardLost`] when one dies mid-shard, plus the
/// taxonomy's protocol/worker variants.
pub fn run_campaign(
    config: &CampaignConfig,
    cmd: &WorkerCommand,
) -> Result<CampaignReport, CampaignError> {
    let workers = config.workers.max(1);
    let ranges =
        partition(usize::try_from(config.spec.devices).expect("device count fits usize"), workers);

    // Spawn every guard first so any later error path drops (and
    // thereby kills) the whole fleet.
    let mut guards = Vec::with_capacity(workers);
    for _ in 0..workers {
        guards.push(WorkerProcess::spawn(cmd)?);
    }

    // One collector thread per worker: handshake, run the shard, ship
    // the result back. Shards stream in whatever order workers finish;
    // the merge makes that order invisible.
    let (tx, rx) = std::sync::mpsc::channel::<Result<ShardReport, CampaignError>>();
    let mut handles = Vec::with_capacity(workers);
    for (shard_id, range) in ranges.iter().enumerate() {
        let shard = ShardAssignment {
            shard_id: u32::try_from(shard_id).expect("shard id fits u32"),
            start: range.start as u64,
            end: range.end as u64,
        };
        let spec = config.spec.clone();
        let addr = guards[shard_id].addr().to_owned();
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let _ = tx.send(drive_worker(&addr, &spec, shard));
        }));
    }
    drop(tx);

    let mut shards = Vec::with_capacity(workers);
    let mut first_error: Option<CampaignError> = None;
    for result in rx {
        match result {
            Ok(report) => shards.push(report),
            Err(e) => first_error = Some(first_error.unwrap_or(e)),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let report = merge_reports(&config.spec, shards)?;
    // Polite shutdown; the drop guards are the enforcement.
    for guard in &guards {
        if let Ok(mut chan) = ControlChannel::connect(guard.addr(), 0) {
            let _ = chan.call(CampaignCall::Shutdown);
        }
    }
    Ok(report)
}

/// Drives one worker through its shard: Hello handshake, RunShard,
/// typed result.
fn drive_worker(
    addr: &str,
    spec: &CampaignSpec,
    shard: ShardAssignment,
) -> Result<ShardReport, CampaignError> {
    let mut chan = ControlChannel::connect(addr, shard.shard_id)?;
    match chan.call(CampaignCall::Hello)? {
        CampaignReply::HelloAck { .. } => {}
        other => {
            return Err(CampaignError::Protocol {
                what: format!("expected HelloAck, got {other:?}"),
            })
        }
    }
    match chan.call(CampaignCall::RunShard { spec: spec.clone(), shard })? {
        CampaignReply::ShardDone(report) => {
            if report.shard_id != shard.shard_id
                || report.start != shard.start
                || report.end != shard.end
            {
                return Err(CampaignError::Protocol {
                    what: format!(
                        "shard {} echoed assignment {}..{} as {}..{}",
                        shard.shard_id, shard.start, shard.end, report.start, report.end
                    ),
                });
            }
            Ok(report)
        }
        other => {
            Err(CampaignError::Protocol { what: format!("expected ShardDone, got {other:?}") })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CampaignSpec {
        CampaignSpec {
            seed: 7,
            devices: 24,
            apps: Vec::new(),
            sample_every: 0,
            rsa_bits: 768,
            kill_at_device: None,
        }
    }

    #[test]
    fn derive_cell_matches_table_1_reference_devices() {
        let policy = RevocationPolicy::default();
        let apps = wideleak_ott::apps::evaluated_apps();
        let netflix = apps.iter().find(|p| p.slug == "netflix").unwrap();
        let disney = apps.iter().find(|p| p.slug == "disney").unwrap();
        let amazon = apps.iter().find(|p| p.slug == "amazon").unwrap();
        // The paper's study devices reproduce their Table-I rows.
        let n5 = DeviceModel::nexus_5();
        let p6 = DeviceModel::pixel_6();
        let mid = DeviceModel::midrange_l3();
        assert_eq!(derive_cell(&n5, netflix, &policy), CellKind::PlaysSd);
        assert_eq!(derive_cell(&n5, disney, &policy), CellKind::Refused);
        assert_eq!(derive_cell(&n5, amazon, &policy), CellKind::Embedded);
        assert_eq!(derive_cell(&p6, netflix, &policy), CellKind::PlaysHd);
        assert_eq!(derive_cell(&p6, disney, &policy), CellKind::PlaysHd);
        assert_eq!(derive_cell(&mid, amazon, &policy), CellKind::Embedded);
        assert_eq!(derive_cell(&mid, disney, &policy), CellKind::PlaysSd);
    }

    #[test]
    fn run_shard_is_deterministic_and_shard_id_free() {
        let spec = quick_spec();
        let whole = run_shard(&spec, ShardAssignment { shard_id: 0, start: 0, end: 24 }).unwrap();
        // The same range under a different shard id yields identical
        // report-visible values (only the echoed id differs).
        let relabeled =
            run_shard(&spec, ShardAssignment { shard_id: 9, start: 0, end: 24 }).unwrap();
        assert_eq!(whole.cells, relabeled.cells);
        assert_eq!(whole.latency, relabeled.latency);
        assert_eq!(whole.counters, relabeled.counters);
    }

    #[test]
    fn split_shards_merge_to_the_whole() {
        let spec = quick_spec();
        let whole = run_shard(&spec, ShardAssignment { shard_id: 0, start: 0, end: 24 }).unwrap();
        let merged_whole = merge_reports(&spec, vec![whole]).unwrap();
        for splits in [2usize, 3, 4] {
            let shards: Vec<ShardReport> = partition(24, splits)
                .into_iter()
                .enumerate()
                .map(|(id, r)| {
                    run_shard(
                        &spec,
                        ShardAssignment {
                            shard_id: id as u32,
                            start: r.start as u64,
                            end: r.end as u64,
                        },
                    )
                    .unwrap()
                })
                .collect();
            let merged = merge_reports(&spec, shards).unwrap();
            assert_eq!(merged.render(), merged_whole.render(), "{splits} shards diverged");
        }
    }

    #[test]
    fn merge_rejects_gaps_and_overlaps() {
        let spec = quick_spec();
        let a = run_shard(&spec, ShardAssignment { shard_id: 0, start: 0, end: 10 }).unwrap();
        let b = run_shard(&spec, ShardAssignment { shard_id: 1, start: 12, end: 24 }).unwrap();
        assert!(matches!(
            merge_reports(&spec, vec![a.clone(), b]),
            Err(CampaignError::Protocol { .. })
        ));
        let short = vec![a];
        assert!(matches!(merge_reports(&spec, short), Err(CampaignError::Protocol { .. })));
    }

    #[test]
    fn run_shard_rejects_out_of_range_assignments() {
        let spec = quick_spec();
        assert!(matches!(
            run_shard(&spec, ShardAssignment { shard_id: 0, start: 0, end: 25 }),
            Err(CampaignError::Worker { .. })
        ));
        assert!(matches!(
            run_shard(&spec, ShardAssignment { shard_id: 0, start: 8, end: 4 }),
            Err(CampaignError::Worker { .. })
        ));
    }

    #[test]
    fn sampled_playbacks_confirm_derived_cells() {
        // Dense sampling over a small range: every device plays for
        // real, and the pure derivation must agree with the ecosystem.
        let spec = CampaignSpec { devices: 6, sample_every: 1, ..quick_spec() };
        let report = run_shard(&spec, ShardAssignment { shard_id: 0, start: 0, end: 6 }).unwrap();
        assert_eq!(report.sampled_plays, 60, "6 devices x 10 apps");
        assert_eq!(report.sample_mismatches, 0, "derivation diverged from real playbacks");
    }

    #[test]
    fn unknown_app_slug_is_a_typed_worker_error() {
        let spec = CampaignSpec { apps: vec!["caveflix".into()], ..quick_spec() };
        assert!(matches!(
            run_shard(&spec, ShardAssignment { shard_id: 0, start: 0, end: 1 }),
            Err(CampaignError::Worker { .. })
        ));
    }
}
