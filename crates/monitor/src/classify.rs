//! The Q1–Q4 classifiers and their Table-I cell types.

use wideleak_dash::mpd::{ContentType, Mpd};
use wideleak_device::catalog::SecurityLevel;

/// Q1 — does the app rely on (platform) Widevine?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WidevineUse {
    /// Platform Widevine drives playback.
    Yes,
    /// Widevine, but through an app-embedded library when only L3 is
    /// available (Amazon's `†`).
    YesWithEmbeddedFallback,
    /// No Widevine involvement observed.
    No,
}

/// Q2 — protection status of one asset class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Downloaded bytes only play with the content key.
    Encrypted,
    /// Downloaded bytes play directly.
    Clear,
    /// The asset's URI could not be discovered (Table I's `-`).
    Unknown,
}

/// Q3 — content-key usage discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyUsage {
    /// Audio in clear or sharing the video key (Table I "Minimum").
    Minimum,
    /// Audio and video under distinct keys (Table I "Recommended").
    Recommended,
    /// Metadata unavailable (regional restriction, Table I's `-`).
    Unknown,
}

/// Q4 — behaviour on a discontinued (revoked) L3 device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LegacyPlayback {
    /// Content plays through platform Widevine (full circle).
    Plays,
    /// Content plays, but through the app's embedded DRM (`†`).
    PlaysViaEmbeddedDrm,
    /// Widevine fails during the provisioning phase (half circle).
    ProvisioningFails,
    /// Playback failed for another reason.
    Fails,
}

/// Classifies Q1 from the two observation runs.
///
/// `modern_widevine_active` — did hooks fire on the modern device;
/// `legacy_widevine_active` — did hooks fire during *playback* on the
/// L3-only device; `legacy_played` — did that playback produce frames.
pub fn q1_widevine_use(
    modern_widevine_active: bool,
    legacy_widevine_active: bool,
    legacy_played: bool,
) -> WidevineUse {
    match (modern_widevine_active, legacy_widevine_active, legacy_played) {
        (false, false, _) => WidevineUse::No,
        (true, false, true) => WidevineUse::YesWithEmbeddedFallback,
        _ => WidevineUse::Yes,
    }
}

/// Classifies Q3 from the MPD's key-id metadata.
///
/// Returns `(usage, per-resolution keys distinct?)` — the second value
/// backs the paper's observation that all apps key each resolution
/// separately.
pub fn q3_key_usage(mpd: &Mpd) -> (KeyUsage, Option<bool>) {
    let video_kids: Vec<String> = mpd
        .adaptation_sets()
        .filter(|s| s.content_type == ContentType::Video)
        .flat_map(|s| s.key_ids())
        .collect();
    if video_kids.is_empty() {
        // No visible metadata at all: the regional-restriction case.
        return (KeyUsage::Unknown, None);
    }
    let mut distinct_video = video_kids.clone();
    distinct_video.sort();
    distinct_video.dedup();
    let per_resolution_distinct = {
        let rep_count: usize = mpd
            .adaptation_sets()
            .filter(|s| s.content_type == ContentType::Video)
            .map(|s| s.representations.len())
            .sum();
        distinct_video.len() == rep_count
    };

    let audio_kids: Vec<String> = mpd
        .adaptation_sets()
        .filter(|s| s.content_type == ContentType::Audio)
        .flat_map(|s| s.key_ids())
        .collect();

    let usage = if audio_kids.is_empty() {
        // Clear audio: the "minimal" practice by definition.
        KeyUsage::Minimum
    } else if audio_kids.iter().any(|k| video_kids.contains(k)) {
        KeyUsage::Minimum
    } else {
        KeyUsage::Recommended
    };
    (usage, Some(per_resolution_distinct))
}

/// Classifies Q4 from the legacy-device playback attempt.
pub fn q4_legacy_playback(play_result: &Result<bool, LegacyFailure>) -> LegacyPlayback {
    match play_result {
        Ok(true) => LegacyPlayback::Plays,
        Ok(false) => LegacyPlayback::PlaysViaEmbeddedDrm,
        Err(LegacyFailure::Revoked) => LegacyPlayback::ProvisioningFails,
        Err(LegacyFailure::Other) => LegacyPlayback::Fails,
    }
}

/// How a legacy playback attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegacyFailure {
    /// The backend refused the device as revoked.
    Revoked,
    /// Any other failure.
    Other,
}

/// The L1-support observation derived from hook traces on a TEE-capable
/// device.
pub fn l1_supported(observed_level: Option<SecurityLevel>) -> bool {
    observed_level == Some(SecurityLevel::L1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_dash::mpd::{AdaptationSet, ContentProtection, Period, Representation};

    fn mpd_with(video_kids: &[&str], audio_kid: Option<&str>) -> Mpd {
        let mut video_set = AdaptationSet {
            content_type: ContentType::Video,
            lang: None,
            content_protections: vec![],
            representations: vec![],
        };
        for (i, kid) in video_kids.iter().enumerate() {
            let mut rep = Representation::new(format!("v{i}"), 1000);
            rep.content_protections = vec![ContentProtection::mp4_protection("cenc", kid)];
            video_set.representations.push(rep);
        }
        let audio_set = AdaptationSet {
            content_type: ContentType::Audio,
            lang: Some("en".into()),
            content_protections: audio_kid
                .map(|k| vec![ContentProtection::mp4_protection("cenc", k)])
                .unwrap_or_default(),
            representations: vec![Representation::new("a", 100)],
        };
        Mpd {
            title: "t".into(),
            periods: vec![Period { adaptation_sets: vec![video_set, audio_set] }],
        }
    }

    #[test]
    fn q1_cases() {
        assert_eq!(q1_widevine_use(true, true, true), WidevineUse::Yes);
        assert_eq!(q1_widevine_use(true, false, true), WidevineUse::YesWithEmbeddedFallback);
        assert_eq!(q1_widevine_use(false, false, false), WidevineUse::No);
        // Legacy failed to play at all: still Widevine (revocation case).
        assert_eq!(q1_widevine_use(true, false, false), WidevineUse::Yes);
    }

    #[test]
    fn q3_clear_audio_is_minimum() {
        let (usage, distinct) = q3_key_usage(&mpd_with(&["k1", "k2", "k3"], None));
        assert_eq!(usage, KeyUsage::Minimum);
        assert_eq!(distinct, Some(true));
    }

    #[test]
    fn q3_shared_audio_key_is_minimum() {
        let (usage, _) = q3_key_usage(&mpd_with(&["k1", "k2", "k3"], Some("k1")));
        assert_eq!(usage, KeyUsage::Minimum);
    }

    #[test]
    fn q3_distinct_audio_key_is_recommended() {
        let (usage, _) = q3_key_usage(&mpd_with(&["k1", "k2", "k3"], Some("ka")));
        assert_eq!(usage, KeyUsage::Recommended);
    }

    #[test]
    fn q3_no_metadata_is_unknown() {
        let (usage, distinct) = q3_key_usage(&mpd_with(&[], None));
        assert_eq!(usage, KeyUsage::Unknown);
        assert_eq!(distinct, None);
    }

    #[test]
    fn q3_reused_video_keys_flagged() {
        let (_, distinct) = q3_key_usage(&mpd_with(&["k1", "k1", "k2"], None));
        assert_eq!(distinct, Some(false));
    }

    #[test]
    fn q4_cases() {
        assert_eq!(q4_legacy_playback(&Ok(true)), LegacyPlayback::Plays);
        assert_eq!(q4_legacy_playback(&Ok(false)), LegacyPlayback::PlaysViaEmbeddedDrm);
        assert_eq!(
            q4_legacy_playback(&Err(LegacyFailure::Revoked)),
            LegacyPlayback::ProvisioningFails
        );
        assert_eq!(q4_legacy_playback(&Err(LegacyFailure::Other)), LegacyPlayback::Fails);
    }

    #[test]
    fn l1_observation() {
        assert!(l1_supported(Some(SecurityLevel::L1)));
        assert!(!l1_supported(Some(SecurityLevel::L3)));
        assert!(!l1_supported(None));
    }
}
