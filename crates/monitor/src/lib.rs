//! WideLeak: the automated Widevine monitoring tool.
//!
//! This crate is the paper's primary contribution: given a running OTT
//! ecosystem and rooted study devices, it answers the four research
//! questions *empirically* — through CDM hook traces, TLS interception
//! (after the SSL-repinning bypass) and asset probing — and regenerates
//! Table I. It never reads the apps' ground-truth profiles; everything is
//! re-derived from observable behaviour.
//!
//! - [`apk`] — the static prong: a class-reference scan over the
//!   decompiled APK whose hits dynamic monitoring must confirm;
//! - [`trace`] — hook-log analysis: Widevine usage, L1/L3 discrimination
//!   by library name, recovery of generic-decrypt outputs (Netflix URIs);
//! - [`netcap`] — interception-proxy analysis: manifest discovery;
//! - [`assets`] — asset probing: protection status of video, audio and
//!   subtitle tracks;
//! - [`classify`] — the Q1–Q4 classifiers and their cell types;
//! - [`study`] — the orchestrated study over all ten apps;
//! - [`report`] — Table-I rendering;
//! - [`resilience`] — the Q5 fault-schedule sweep: which apps recover,
//!   degrade, retry-storm or fail closed under injected faults;
//! - [`adapt`] — the adaptation sweep: rate switching, rebuffering and
//!   license churn under bandwidth-constrained CDN links;
//! - [`campaign`] — the sharded measurement campaign: worker processes
//!   re-deriving the compliance matrix over the generated device
//!   catalog, merged into one exact, shard-count-invariant report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod apk;
pub mod assets;
pub mod campaign;
pub mod classify;
pub mod netcap;
pub mod report;
pub mod resilience;
pub mod study;
pub mod trace;

use std::fmt;

/// Errors surfaced by the monitoring tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// The device refused instrumentation (not rooted).
    Instrumentation {
        /// What failed.
        what: String,
    },
    /// A probe download failed.
    Probe {
        /// What failed.
        what: String,
    },
    /// The app under study failed in an unexpected way.
    App {
        /// Description of the failure.
        what: String,
    },
}

impl MonitorError {
    /// A stable lowercase label for telemetry error-class counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            MonitorError::Instrumentation { .. } => "instrumentation",
            MonitorError::Probe { .. } => "probe",
            MonitorError::App { .. } => "app",
        }
    }
}

impl wideleak_faults::ErrorClass for MonitorError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Instrumentation { what } => write!(f, "instrumentation failed: {what}"),
            MonitorError::Probe { what } => write!(f, "probe failed: {what}"),
            MonitorError::App { what } => write!(f, "app failure: {what}"),
        }
    }
}

impl std::error::Error for MonitorError {}
