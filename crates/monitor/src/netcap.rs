//! Interception-proxy (network capture) analysis.
//!
//! After the SSL-repinning bypass, every request the app makes is visible
//! in plaintext. The monitor mines the capture for the Media Presentation
//! Description and the asset URIs it references.

use wideleak_dash::mpd::Mpd;
use wideleak_device::net::CapturedExchange;

/// Finds the first plaintext MPD in a capture.
pub fn find_mpd(capture: &[CapturedExchange]) -> Option<Mpd> {
    capture.iter().find_map(|ex| {
        let text = String::from_utf8(ex.response.clone()).ok()?;
        Mpd::parse(&text).ok()
    })
}

/// Whether any manifest-path exchange has a non-MPD (opaque) response —
/// the signature of a URI-protection channel like Netflix's.
pub fn has_opaque_manifest(capture: &[CapturedExchange]) -> bool {
    capture.iter().any(|ex| {
        ex.path.starts_with("manifest/")
            && String::from_utf8(ex.response.clone())
                .ok()
                .and_then(|t| Mpd::parse(&t).ok())
                .is_none()
            && !ex.response.is_empty()
    })
}

/// All asset paths the app touched during the capture.
pub fn asset_paths(capture: &[CapturedExchange]) -> Vec<String> {
    capture.iter().filter(|ex| ex.path.starts_with("asset/")).map(|ex| ex.path.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(path: &str, response: Vec<u8>) -> CapturedExchange {
        CapturedExchange { path: path.into(), request: vec![], response }
    }

    #[test]
    fn finds_plaintext_mpd() {
        let mpd = Mpd { title: "t".into(), periods: vec![] };
        let cap = vec![
            exchange("license/app/title", vec![1, 2, 3]),
            exchange("manifest/app/title", mpd.to_xml_string().into_bytes()),
        ];
        assert_eq!(find_mpd(&cap).unwrap().title, "t");
        assert!(!has_opaque_manifest(&cap));
    }

    #[test]
    fn detects_opaque_manifest() {
        let cap = vec![exchange("manifest/netflix/title", vec![0xde, 0xad])];
        assert!(find_mpd(&cap).is_none());
        assert!(has_opaque_manifest(&cap));
    }

    #[test]
    fn empty_manifest_response_is_not_opaque() {
        let cap = vec![exchange("manifest/app/title", vec![])];
        assert!(!has_opaque_manifest(&cap));
    }

    #[test]
    fn collects_asset_paths() {
        let cap = vec![
            exchange("asset/app/t/video-540p/init", vec![1]),
            exchange("license/app/t", vec![2]),
            exchange("asset/app/t/video-540p/seg/1", vec![3]),
        ];
        assert_eq!(
            asset_paths(&cap),
            vec!["asset/app/t/video-540p/init", "asset/app/t/video-540p/seg/1"]
        );
    }
}
