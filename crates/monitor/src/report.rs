//! Table-I rendering: the study report as the paper prints it.

use crate::classify::{KeyUsage, LegacyPlayback, Protection, WidevineUse};
use crate::study::{AppFindings, StudyReport};

fn q1_cell(f: &AppFindings) -> &'static str {
    match f.widevine_use {
        WidevineUse::Yes => "WV",
        WidevineUse::YesWithEmbeddedFallback => "WV (dagger)",
        WidevineUse::No => "custom",
    }
}

fn protection_cell(p: Protection) -> &'static str {
    match p {
        Protection::Encrypted => "Encrypted",
        Protection::Clear => "Clear",
        Protection::Unknown => "-",
    }
}

fn q3_cell(u: KeyUsage) -> &'static str {
    match u {
        KeyUsage::Minimum => "Minimum",
        KeyUsage::Recommended => "Recommended",
        KeyUsage::Unknown => "-",
    }
}

fn q4_cell(l: LegacyPlayback) -> &'static str {
    match l {
        LegacyPlayback::Plays => "plays",
        LegacyPlayback::PlaysViaEmbeddedDrm => "plays (custom DRM)",
        LegacyPlayback::ProvisioningFails => "fails (provisioning)",
        LegacyPlayback::Fails => "fails",
    }
}

/// Renders the study as the paper's Table I (ASCII form).
pub fn render_table_1(report: &StudyReport) -> String {
    let mut rows: Vec<[String; 7]> = vec![[
        "OTT".into(),
        "Widevine (Q1)".into(),
        "Video (Q2)".into(),
        "Audio (Q2)".into(),
        "Subtitles (Q2)".into(),
        "Key Usage (Q3)".into(),
        "L3 discontinued playback (Q4)".into(),
    ]];
    for f in &report.findings {
        rows.push([
            f.app_name.clone(),
            q1_cell(f).to_owned(),
            protection_cell(f.assets.video).to_owned(),
            protection_cell(f.assets.audio).to_owned(),
            protection_cell(f.assets.subtitles).to_owned(),
            q3_cell(f.key_usage).to_owned(),
            q4_cell(f.legacy).to_owned(),
        ]);
    }

    let widths: Vec<usize> =
        (0..7).map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0)).collect();
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", cell, width = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
    }
    out
}

/// Renders the per-function CDM call counts aggregated over all apps —
/// the raw statistic behind Q1 ("any function called within the CDM
/// process linked to the Widevine protocol").
pub fn render_call_histogram(report: &StudyReport) -> String {
    let mut totals: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in &report.findings {
        for (func, count) in &f.cdm_call_histogram {
            *totals.entry(func.as_str()).or_default() += count;
        }
    }
    if totals.is_empty() {
        return String::new();
    }
    let mut out = String::from("CDM calls observed (all apps):\n");
    for (func, count) in totals {
        out.push_str(&format!("  {func:<56} {count:>8}\n"));
    }
    out
}

/// The learned-lessons summary lines (§IV-C), derived from the findings.
pub fn render_insights(report: &StudyReport) -> String {
    let total = report.findings.len();
    let widevine = report.findings.iter().filter(|f| f.widevine_use != WidevineUse::No).count();
    let l1 = report.findings.iter().filter(|f| f.l1_on_modern_device).count();
    let clear_audio =
        report.findings.iter().filter(|f| f.assets.audio == Protection::Clear).count();
    let clear_subs =
        report.findings.iter().filter(|f| f.assets.subtitles == Protection::Clear).count();
    let unknown_subs =
        report.findings.iter().filter(|f| f.assets.subtitles == Protection::Unknown).count();
    let recommended =
        report.findings.iter().filter(|f| f.key_usage == KeyUsage::Recommended).count();
    let legacy_play = report
        .findings
        .iter()
        .filter(|f| matches!(f.legacy, LegacyPlayback::Plays | LegacyPlayback::PlaysViaEmbeddedDrm))
        .count();
    let revoking =
        report.findings.iter().filter(|f| f.legacy == LegacyPlayback::ProvisioningFails).count();
    format!(
        "apps evaluated: {total}\n\
         apps relying on Widevine: {widevine}/{total}\n\
         apps using TEE-backed L1 on capable devices: {l1}/{total}\n\
         apps with audio in clear: {clear_audio}\n\
         apps with subtitles confirmed clear: {clear_subs} (undiscovered: {unknown_subs})\n\
         apps following the multi-key recommendation: {recommended}\n\
         apps serving revoked devices: {legacy_play}/{total} (refusing: {revoking})\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assets::AssetFindings;

    fn finding(name: &str) -> AppFindings {
        AppFindings {
            app_name: name.into(),
            installs_millions: 1,
            widevine_use: WidevineUse::Yes,
            l1_on_modern_device: true,
            assets: AssetFindings {
                video: Protection::Encrypted,
                audio: Protection::Clear,
                subtitles: Protection::Unknown,
            },
            key_usage: KeyUsage::Minimum,
            per_resolution_keys_distinct: Some(true),
            legacy: LegacyPlayback::Plays,
            legacy_resolution: Some((960, 540)),
            uri_channel_observed: false,
            cdm_call_histogram: vec![("liboemcrypto.so!_oecc21_DecryptCTR".into(), 4)],
        }
    }

    #[test]
    fn table_renders_all_rows_and_cells() {
        let report = StudyReport { findings: vec![finding("AppA"), finding("AppB")] };
        let table = render_table_1(&report);
        assert!(table.contains("AppA"));
        assert!(table.contains("AppB"));
        assert!(table.contains("Encrypted"));
        assert!(table.contains("Minimum"));
        assert!(table.contains("plays"));
        assert_eq!(table.lines().count(), 4, "header + rule + two rows");
    }

    #[test]
    fn call_histogram_aggregates_across_apps() {
        let report = StudyReport { findings: vec![finding("A"), finding("B")] };
        let rendered = render_call_histogram(&report);
        assert!(rendered.contains("liboemcrypto.so!_oecc21_DecryptCTR"));
        assert!(rendered.contains('8'), "4 calls from each of two apps");
        assert!(render_call_histogram(&StudyReport { findings: vec![] }).is_empty());
    }

    #[test]
    fn insights_counts() {
        let mut a = finding("A");
        a.key_usage = KeyUsage::Recommended;
        a.legacy = LegacyPlayback::ProvisioningFails;
        let b = finding("B");
        let report = StudyReport { findings: vec![a, b] };
        let insights = render_insights(&report);
        assert!(insights.contains("apps evaluated: 2"));
        assert!(insights.contains("recommendation: 1"));
        assert!(insights.contains("revoked devices: 1/2 (refusing: 1)"));
    }
}
