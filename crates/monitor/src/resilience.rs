//! The Q5 resilience study: sweep deterministic fault schedules over the
//! evaluated apps and observe how each client's resilience policy copes.
//!
//! Where Q1–Q4 ask what the apps *protect*, Q5 asks what they *survive*:
//! for every (scenario, app) cell a fresh ecosystem is booted with a
//! seeded [`FaultPlan`] attached, the app plays the study title on a
//! modern device, and the outcome is classified from the playback result
//! plus the client's own [`RetryStatsSnapshot`] — recovered via
//! retry/renewal, degraded to L3-class quality, retry-stormed until the
//! budget ran dry, or failed closed on first contact.
//!
//! Every cell gets its own ecosystem so `Once`/`FirstN` schedules fire
//! identically for every app; with the plans seeded and the clock
//! virtual, the whole report is a pure function of the seed.

use wideleak_android_drm::binder::TransportKind;
use wideleak_device::catalog::DeviceModel;
use wideleak_faults::{FaultKind, FaultPlan, ResiliencePolicy, Schedule};
use wideleak_ott::apps::RetryStatsSnapshot;
use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

use crate::study::STUDY_TITLE;

/// One named fault schedule the sweep applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScenario {
    /// Stable scenario slug (also the report column header).
    pub name: &'static str,
    /// What the schedule simulates.
    pub description: &'static str,
    /// The plan attached to every ecosystem of this scenario.
    pub plan: FaultPlan,
}

/// The sweep's fault schedules, in report-column order.
///
/// Each one targets a different seam of the stack: license-server 5xx
/// bursts, a truncated manifest body, persistent CDN corruption of the
/// HD rendition, a dead binder channel, and a device-clock jump past the
/// license duration.
pub fn scenarios() -> Vec<FaultScenario> {
    vec![
        FaultScenario {
            name: "license-5xx-burst",
            description: "license server returns errors for the first two requests",
            plan: FaultPlan::builder()
                .server_fault("license/", FaultKind::ErrorCode, Schedule::FirstN { n: 2 })
                .build(),
        },
        FaultScenario {
            name: "manifest-truncated-once",
            description: "the first manifest body arrives truncated to 7 bytes",
            plan: FaultPlan::builder()
                .server_fault(
                    "manifest/",
                    FaultKind::TruncateBody { keep: 7 },
                    Schedule::Once { at: 0 },
                )
                .build(),
        },
        FaultScenario {
            name: "hd-cdn-corruption",
            description: "every 1080p asset body is garbled by the CDN",
            plan: FaultPlan::builder()
                .server_fault("video-1080", FaultKind::GarbleBody, Schedule::Always)
                .build(),
        },
        FaultScenario {
            name: "binder-drop-storm",
            description: "every decrypt transaction dies on the binder",
            plan: FaultPlan::builder()
                .binder_fault("decrypt_sample", FaultKind::Drop, Schedule::Always)
                .build(),
        },
        FaultScenario {
            name: "license-expiry-skew",
            description: "the device clock jumps two days before the first decrypt",
            plan: FaultPlan::builder()
                .binder_fault(
                    "decrypt_sample",
                    FaultKind::ClockSkew { secs: 172_800 },
                    Schedule::Once { at: 0 },
                )
                .build(),
        },
    ]
}

/// How one app weathered one fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Played with no resilience machinery engaged.
    Played,
    /// Played, but only after retries and/or a license renewal.
    Recovered {
        /// Retries spent getting there.
        retries: u64,
    },
    /// Played at degraded (L3-class) quality after abandoning HD.
    Degraded,
    /// Burned the whole retry budget and still failed.
    RetryStorm {
        /// Retries spent before giving up.
        retries: u64,
    },
    /// Failed without the policy absorbing anything.
    FailedClosed,
}

impl Outcome {
    /// The report-cell label.
    pub fn label(&self) -> String {
        match self {
            Outcome::Played => "plays".to_owned(),
            Outcome::Recovered { retries: 0 } => "recovers (renewal)".to_owned(),
            Outcome::Recovered { retries } => format!("recovers ({retries} retries)"),
            Outcome::Degraded => "degrades to L3".to_owned(),
            Outcome::RetryStorm { retries } => format!("retry storm ({retries} retries)"),
            Outcome::FailedClosed => "fails closed".to_owned(),
        }
    }
}

/// One (scenario, app) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceCell {
    /// Scenario slug.
    pub scenario: &'static str,
    /// App display name.
    pub app_name: String,
    /// The classified outcome.
    pub outcome: Outcome,
    /// The client's own resilience accounting.
    pub stats: RetryStatsSnapshot,
    /// Faults the injector actually fired during the cell.
    pub faults_injected: u64,
}

/// The full Q5 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Every cell, scenario-major in sweep order.
    pub cells: Vec<ResilienceCell>,
}

impl ResilienceReport {
    /// Looks one cell up.
    pub fn cell(&self, scenario: &str, app_name: &str) -> Option<&ResilienceCell> {
        self.cells.iter().find(|c| c.scenario == scenario && c.app_name == app_name)
    }

    /// Apps that recovered (retries or renewal) in at least one scenario.
    pub fn recovered_apps(&self) -> Vec<&str> {
        self.apps_with(|o| matches!(o, Outcome::Recovered { .. }))
    }

    /// Apps that degraded to L3-class playback in at least one scenario.
    pub fn degraded_apps(&self) -> Vec<&str> {
        self.apps_with(|o| matches!(o, Outcome::Degraded))
    }

    /// Apps that retry-stormed in at least one scenario.
    pub fn storming_apps(&self) -> Vec<&str> {
        self.apps_with(|o| matches!(o, Outcome::RetryStorm { .. }))
    }

    fn apps_with(&self, pred: impl Fn(&Outcome) -> bool) -> Vec<&str> {
        let mut apps: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if pred(&cell.outcome) && !apps.contains(&cell.app_name.as_str()) {
                apps.push(&cell.app_name);
            }
        }
        apps
    }
}

/// Classifies one cell from the playback result and the client's stats.
fn classify(played: bool, stats: RetryStatsSnapshot, policy: &ResiliencePolicy) -> Outcome {
    if played {
        if stats.l3_fallbacks > 0 {
            Outcome::Degraded
        } else if stats.retries > 0 || stats.renewals > 0 {
            Outcome::Recovered { retries: stats.retries }
        } else {
            Outcome::Played
        }
    } else if stats.retries >= u64::from(policy.max_retries) {
        Outcome::RetryStorm { retries: stats.retries }
    } else {
        Outcome::FailedClosed
    }
}

/// Runs the resilience sweep: every scenario against every evaluated app
/// (`quick` limits the sweep to the first four apps for CI).
///
/// Determinism contract: the report is a pure function of `seed` — each
/// cell boots a fresh ecosystem with the scenario's plan and the same
/// seed, so two runs produce identical reports.
pub fn run_resilience_study(seed: u64, quick: bool) -> ResilienceReport {
    run_resilience_study_on(seed, quick, TransportKind::InProcess)
}

/// [`run_resilience_study`] with an explicit binder transport — the
/// differential battery runs the same sweep over all three and pins
/// byte-identical `render_q5` output.
pub fn run_resilience_study_on(
    seed: u64,
    quick: bool,
    transport: TransportKind,
) -> ResilienceReport {
    run_resilience_study_with(seed, quick, transport, 1)
}

/// [`run_resilience_study_on`] with an explicit TCP pipeline depth —
/// the pipelining differential test pins that multiplexing calls on
/// one shared connection (depth ≥ 2) changes nothing in the report.
pub fn run_resilience_study_with(
    seed: u64,
    quick: bool,
    transport: TransportKind,
    tcp_pipeline_depth: usize,
) -> ResilienceReport {
    let _span = wideleak_telemetry::span!("resilience.run");
    let policy = ResiliencePolicy::default();
    let mut cells = Vec::new();
    for scenario in scenarios() {
        let _scenario_span = wideleak_telemetry::span!("resilience.scenario", name = scenario.name);
        let roster = Ecosystem::new(EcosystemConfig::fast_for_tests());
        let slugs: Vec<String> = roster.profiles().iter().map(|p| p.slug.to_owned()).collect();
        let take = if quick { 4 } else { slugs.len() };
        for slug in slugs.iter().take(take) {
            cells.push(run_cell(&scenario, slug, seed, &policy, transport, tcp_pipeline_depth));
        }
    }
    wideleak_telemetry::add("resilience.cells", cells.len() as u64);
    ResilienceReport { cells }
}

/// Runs one (scenario, app) cell on a fresh ecosystem so per-plan
/// schedules (`Once`, `FirstN`) start from zero for every app.
fn run_cell(
    scenario: &FaultScenario,
    slug: &str,
    seed: u64,
    policy: &ResiliencePolicy,
    transport: TransportKind,
    tcp_pipeline_depth: usize,
) -> ResilienceCell {
    let mut config = EcosystemConfig::fast_with_faults(scenario.plan.clone());
    config.seed = seed;
    config.resilience = policy.clone();
    config.transport = transport;
    config.tcp_pipeline_depth = tcp_pipeline_depth;
    let eco = Ecosystem::new(config);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, slug, "resilience-probe");
    let played = app.play(STUDY_TITLE).is_ok();
    let stats = app.retry_stats();
    ResilienceCell {
        scenario: scenario.name,
        app_name: eco.profile(slug).expect("known slug").name.to_owned(),
        outcome: classify(played, stats, policy),
        stats,
        faults_injected: eco.fault_injector().injected_count(),
    }
}

/// Renders the Q5 report as an ASCII table: one row per app, one column
/// per scenario.
pub fn render_q5(report: &ResilienceReport) -> String {
    let mut apps: Vec<&str> = Vec::new();
    for cell in &report.cells {
        if !apps.contains(&cell.app_name.as_str()) {
            apps.push(&cell.app_name);
        }
    }
    let columns: Vec<&str> = scenarios().iter().map(|s| s.name).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["OTT".to_owned()];
    header.extend(columns.iter().map(|c| (*c).to_owned()));
    rows.push(header);
    for app in &apps {
        let mut row = vec![(*app).to_owned()];
        for col in &columns {
            row.push(report.cell(col, app).map_or_else(|| "-".to_owned(), |c| c.outcome.label()));
        }
        rows.push(row);
    }

    let cols = rows[0].len();
    let widths: Vec<usize> =
        (0..cols).map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0)).collect();
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", cell, width = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_plans_are_distinct_and_named() {
        let list = scenarios();
        assert_eq!(list.len(), 5);
        for s in &list {
            assert!(!s.plan.is_empty(), "{} must carry rules", s.name);
        }
        let mut names: Vec<_> = list.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn classify_prefers_degradation_over_recovery() {
        let policy = ResiliencePolicy::default();
        let stats = RetryStatsSnapshot { retries: 3, timeouts: 0, l3_fallbacks: 1, renewals: 0 };
        assert_eq!(classify(true, stats, &policy), Outcome::Degraded);
    }

    #[test]
    fn classify_storm_requires_spent_budget() {
        let policy = ResiliencePolicy::default();
        let spent = RetryStatsSnapshot { retries: 3, timeouts: 0, l3_fallbacks: 0, renewals: 0 };
        let fresh = RetryStatsSnapshot { retries: 0, timeouts: 0, l3_fallbacks: 0, renewals: 0 };
        assert_eq!(classify(false, spent, &policy), Outcome::RetryStorm { retries: 3 });
        assert_eq!(classify(false, fresh, &policy), Outcome::FailedClosed);
    }

    #[test]
    fn quick_sweep_produces_expected_shape() {
        let report = run_resilience_study(7, true);
        assert_eq!(report.cells.len(), scenarios().len() * 4);
        assert!(!report.recovered_apps().is_empty(), "someone must recover via retries");
        assert!(!report.degraded_apps().is_empty(), "someone must degrade to L3");
        let rendered = render_q5(&report);
        assert!(rendered.contains("license-5xx-burst"));
        assert!(rendered.lines().count() >= 6);
    }
}
