//! The orchestrated WideLeak study: drive every app on a modern and a
//! discontinued device, observe through hooks and interception, classify.

use std::sync::Arc;

use wideleak_device::catalog::DeviceModel;
use wideleak_device::net::Interceptor;
use wideleak_ott::ecosystem::Ecosystem;
use wideleak_ott::OttError;

use crate::assets::{probe_assets, AssetFindings};
use crate::classify::{
    l1_supported, q1_widevine_use, q3_key_usage, q4_legacy_playback, KeyUsage, LegacyFailure,
    LegacyPlayback, Protection, WidevineUse,
};
use crate::{netcap, trace, MonitorError};

/// Everything the study learned about one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppFindings {
    /// Display name.
    pub app_name: String,
    /// Installs in millions (context column).
    pub installs_millions: u32,
    /// Q1 — Widevine reliance.
    pub widevine_use: WidevineUse,
    /// Whether the modern device ran at L1 (TEE-backed).
    pub l1_on_modern_device: bool,
    /// Q2 — per-asset protection.
    pub assets: AssetFindings,
    /// Q3 — key usage discipline.
    pub key_usage: KeyUsage,
    /// Whether video renditions use pairwise-distinct keys.
    pub per_resolution_keys_distinct: Option<bool>,
    /// Q4 — discontinued-device behaviour.
    pub legacy: LegacyPlayback,
    /// Resolution obtained on the discontinued device, when it played.
    pub legacy_resolution: Option<(u32, u32)>,
    /// Whether a non-DASH URI-protection channel was observed (and
    /// pierced by dumping generic-decrypt outputs).
    pub uri_channel_observed: bool,
    /// Per-function CDM call counts from the modern-device hook log
    /// (`library!function` keys, as [`trace::call_histogram`] emits).
    pub cdm_call_histogram: Vec<(String, usize)>,
}

/// The full study result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyReport {
    /// Findings per app, in evaluation order.
    pub findings: Vec<AppFindings>,
}

impl StudyReport {
    /// Looks an app's findings up by name.
    pub fn app(&self, name: &str) -> Option<&AppFindings> {
        self.findings.iter().find(|f| f.app_name == name)
    }
}

/// The study title used by every monitoring run.
pub const STUDY_TITLE: &str = "title-001";

/// Runs the full study over every evaluated app.
///
/// # Errors
///
/// Propagates instrumentation and probing failures; app-level refusals
/// (revocation) are *findings*, not errors.
pub fn run_study(eco: &Ecosystem) -> Result<StudyReport, MonitorError> {
    let _span = wideleak_telemetry::span!("study.run");
    let mut findings = Vec::new();
    for profile in eco.profiles().to_vec() {
        findings.push(study_app(eco, profile.slug)?);
    }
    wideleak_telemetry::add("study.apps_studied", findings.len() as u64);
    Ok(StudyReport { findings })
}

/// Studies one app (by slug).
///
/// # Errors
///
/// Returns [`MonitorError`] when instrumentation or probing breaks; the
/// app failing to play is recorded in the findings instead.
pub fn study_app(eco: &Ecosystem, slug: &str) -> Result<AppFindings, MonitorError> {
    let _span = wideleak_telemetry::span!("study.app", app = slug);
    let profile = eco
        .profile(slug)
        .ok_or_else(|| MonitorError::App { what: format!("unknown app {slug}") })?
        .clone();

    // ---- Run 1: modern TEE-capable device, fully instrumented. --------
    let modern_run = wideleak_telemetry::span!("study.run.modern", app = slug);
    let modern = eco.boot_device(DeviceModel::pixel_6(), true);
    let app = eco.install_app(&modern, slug, "wideleak-researcher");

    let proxy = Arc::new(Interceptor::new());
    modern.device.network().attach_interceptor(proxy.clone());
    modern
        .device
        .apply_ssl_repinning_bypass()
        .map_err(|e| MonitorError::Instrumentation { what: e.to_string() })?;
    modern.device.hook_engine().start_recording();

    let modern_outcome = app.play(STUDY_TITLE);
    let hook_log = modern.device.hook_engine().stop_recording();
    let capture = proxy.captured();
    drop(modern_run);

    modern_outcome
        .map_err(|e| MonitorError::App { what: format!("{slug} failed on modern device: {e}") })?;
    let analysis = {
        let _q1 = wideleak_telemetry::span!("study.q1.widevine_use", app = slug);
        trace::analyze(&hook_log)
    };

    // The raw per-function call counts behind Q1: kept in the findings
    // for the report and mirrored into telemetry counters.
    let cdm_call_histogram = trace::call_histogram(&hook_log);
    if wideleak_telemetry::is_enabled() {
        for (func, count) in &cdm_call_histogram {
            wideleak_telemetry::add(&format!("hook.calls.{func}"), *count as u64);
        }
        wideleak_telemetry::add(
            "hook.cdm_calls",
            cdm_call_histogram.iter().map(|(_, c)| *c as u64).sum(),
        );
    }

    // Manifest recovery: plaintext from the capture, or — when the app
    // protects URIs — from the dumped generic-decrypt outputs.
    let opaque_manifest = netcap::has_opaque_manifest(&capture);
    let mpd = match netcap::find_mpd(&capture) {
        Some(mpd) => Some(mpd),
        None => trace::recover_mpd_from_trace(&hook_log),
    };
    let uri_channel_observed = opaque_manifest && mpd.is_some();

    let (assets, key_usage, per_resolution_keys_distinct) = match &mpd {
        Some(mpd) => {
            let assets = {
                let _q2 = wideleak_telemetry::span!("study.q2.asset_protection", app = slug);
                probe_assets(eco.backend().as_ref(), mpd)?
            };
            let _q3 = wideleak_telemetry::span!("study.q3.key_usage", app = slug);
            let (usage, distinct) = q3_key_usage(mpd);
            (assets, usage, distinct)
        }
        None => (
            AssetFindings {
                video: Protection::Unknown,
                audio: Protection::Unknown,
                subtitles: Protection::Unknown,
            },
            KeyUsage::Unknown,
            None,
        ),
    };

    // ---- Run 2: discontinued L3 device (the Nexus-5 configuration). ---
    let _q4 = wideleak_telemetry::span!("study.q4.legacy_playback", app = slug);
    let legacy = eco.boot_device(DeviceModel::nexus_5(), true);
    let legacy_app = eco.install_app(&legacy, slug, "wideleak-researcher-legacy");
    legacy.device.hook_engine().start_recording();
    let legacy_outcome = legacy_app.play(STUDY_TITLE);
    let legacy_log = legacy.device.hook_engine().stop_recording();
    let legacy_widevine_active = !legacy_log.is_empty();

    let (legacy_result, legacy_resolution) = match &legacy_outcome {
        Ok(outcome) => (Ok(outcome.used_platform_widevine), Some(outcome.resolution)),
        Err(OttError::DeviceRevoked { .. }) => (Err(LegacyFailure::Revoked), None),
        Err(_) => (Err(LegacyFailure::Other), None),
    };

    let legacy_played = legacy_outcome.is_ok();
    let widevine_use = q1_widevine_use(
        analysis.widevine_active,
        legacy_widevine_active && legacy_played,
        legacy_played,
    );

    Ok(AppFindings {
        app_name: profile.name.to_owned(),
        installs_millions: profile.installs_millions,
        widevine_use,
        l1_on_modern_device: l1_supported(analysis.observed_level),
        assets,
        key_usage,
        per_resolution_keys_distinct,
        legacy: q4_legacy_playback(&legacy_result),
        legacy_resolution,
        uri_channel_observed,
        cdm_call_histogram,
    })
}

/// Demonstrates that interception without the repinning bypass fails —
/// the control experiment showing why the bypass is necessary.
///
/// Returns `true` when pinning blocked the proxied connection.
pub fn pinning_blocks_without_bypass(eco: &Ecosystem) -> bool {
    let stack = eco.boot_device(DeviceModel::pixel_6(), true);
    let app = eco.install_app(&stack, "showtime", "pinning-probe");
    stack.device.network().attach_interceptor(Arc::new(Interceptor::new()));
    // No bypass applied: the app's pinned TLS must refuse the proxy.
    matches!(app.play(STUDY_TITLE), Err(OttError::Net(_)))
}
