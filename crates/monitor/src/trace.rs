//! Hook-trace analysis: what the `_oecc` call log reveals.

use wideleak_cdm::oemcrypto::{L1_LIBRARY, L3_LIBRARY};
use wideleak_dash::mpd::Mpd;
use wideleak_device::catalog::SecurityLevel;
use wideleak_device::hooks::CallEvent;

/// Summary of one recorded hook log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Total intercepted calls.
    pub call_count: usize,
    /// Whether any Widevine CDM function fired.
    pub widevine_active: bool,
    /// The observed security level: L1 when control flow reached
    /// `liboemcrypto.so`, L3 when every call stayed inside
    /// `libwvdrmengine.so` — exactly the paper's discrimination rule.
    pub observed_level: Option<SecurityLevel>,
    /// Whether the non-DASH generic crypto API was exercised.
    pub generic_crypto_used: bool,
}

/// Analyzes a hook log.
pub fn analyze(log: &[CallEvent]) -> TraceAnalysis {
    let widevine_active = !log.is_empty();
    let reached_oemcrypto = log.iter().any(|e| e.library == L1_LIBRARY);
    let stayed_in_engine = log.iter().any(|e| e.library == L3_LIBRARY);
    let observed_level = if reached_oemcrypto {
        Some(SecurityLevel::L1)
    } else if stayed_in_engine {
        Some(SecurityLevel::L3)
    } else {
        None
    };
    let generic_crypto_used = log.iter().any(|e| e.function.contains("Generic_"));
    TraceAnalysis { call_count: log.len(), widevine_active, observed_level, generic_crypto_used }
}

/// Per-function call counts — the raw statistic the paper's tool logs
/// while "intercept[ing] and not[ing] any function called within the CDM
/// process linked to the Widevine protocol".
pub fn call_histogram(log: &[CallEvent]) -> Vec<(String, usize)> {
    let mut counts: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for e in log {
        *counts.entry(format!("{}!{}", e.library, e.function)).or_default() += 1;
    }
    counts.into_iter().collect()
}

/// Dumps the *outputs* of every generic-decrypt call — the technique the
/// paper uses to recover Netflix's protected URIs despite the secure
/// channel.
pub fn generic_decrypt_outputs(log: &[CallEvent]) -> Vec<Vec<u8>> {
    log.iter()
        .filter(|e| e.function.contains("Generic_Decrypt"))
        .filter_map(|e| e.result.clone())
        .collect()
}

/// Tries to recover an MPD from intercepted generic-decrypt outputs.
pub fn recover_mpd_from_trace(log: &[CallEvent]) -> Option<Mpd> {
    generic_decrypt_outputs(log).into_iter().find_map(|bytes| {
        let text = String::from_utf8(bytes).ok()?;
        Mpd::parse(&text).ok()
    })
}

/// Extracts the dumped derivation/licensing buffers (the `_oecc34` /
/// `_oecc31` argument dumps the attack replays).
pub fn licensing_buffers(log: &[CallEvent]) -> Vec<(String, Vec<Vec<u8>>)> {
    log.iter()
        .filter(|e| {
            e.function.contains("DeriveKeysFromSessionKey")
                || e.function.contains("RewrapDeviceRSAKey")
                || e.function.contains("LoadKeys")
        })
        .map(|e| (e.function.clone(), e.args.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(library: &str, function: &str) -> CallEvent {
        CallEvent::simple(library, function)
    }

    #[test]
    fn empty_log_means_no_widevine() {
        let a = analyze(&[]);
        assert!(!a.widevine_active);
        assert_eq!(a.observed_level, None);
        assert_eq!(a.call_count, 0);
    }

    #[test]
    fn l3_when_calls_stay_in_engine() {
        let log =
            vec![event(L3_LIBRARY, "_oecc04_OpenSession"), event(L3_LIBRARY, "_oecc21_DecryptCTR")];
        let a = analyze(&log);
        assert!(a.widevine_active);
        assert_eq!(a.observed_level, Some(SecurityLevel::L3));
    }

    #[test]
    fn l1_when_control_flow_reaches_oemcrypto() {
        let log =
            vec![event(L3_LIBRARY, "_oecc04_OpenSession"), event(L1_LIBRARY, "_oecc21_DecryptCTR")];
        assert_eq!(analyze(&log).observed_level, Some(SecurityLevel::L1));
    }

    #[test]
    fn generic_crypto_detection() {
        assert!(!analyze(&[event(L3_LIBRARY, "_oecc21_DecryptCTR")]).generic_crypto_used);
        assert!(analyze(&[event(L3_LIBRARY, "_oecc42_Generic_Decrypt")]).generic_crypto_used);
    }

    #[test]
    fn generic_decrypt_output_dumping() {
        let mut ev = event(L3_LIBRARY, "_oecc42_Generic_Decrypt");
        ev.result = Some(b"<MPD...".to_vec());
        let other = event(L3_LIBRARY, "_oecc41_Generic_Encrypt");
        assert_eq!(generic_decrypt_outputs(&[ev, other]), vec![b"<MPD...".to_vec()]);
    }

    #[test]
    fn mpd_recovery_from_trace() {
        let mpd = Mpd { title: "secret".into(), periods: vec![] };
        let mut ev = event(L3_LIBRARY, "_oecc42_Generic_Decrypt");
        ev.result = Some(mpd.to_xml_string().into_bytes());
        let recovered = recover_mpd_from_trace(&[ev]).unwrap();
        assert_eq!(recovered.title, "secret");
        // Non-MPD outputs do not confuse it.
        let mut junk = event(L3_LIBRARY, "_oecc42_Generic_Decrypt");
        junk.result = Some(vec![0xff, 0x00]);
        assert!(recover_mpd_from_trace(&[junk]).is_none());
    }

    #[test]
    fn histogram_counts_per_function() {
        let log = vec![
            event(L3_LIBRARY, "_oecc04_OpenSession"),
            event(L3_LIBRARY, "_oecc21_DecryptCTR"),
            event(L3_LIBRARY, "_oecc21_DecryptCTR"),
            event(L1_LIBRARY, "_oecc21_DecryptCTR"),
        ];
        let hist = call_histogram(&log);
        assert_eq!(hist.len(), 3, "library-qualified keys");
        let decrypt_l3 =
            hist.iter().find(|(k, _)| k == &format!("{L3_LIBRARY}!_oecc21_DecryptCTR")).unwrap();
        assert_eq!(decrypt_l3.1, 2);
        assert!(call_histogram(&[]).is_empty());
    }

    #[test]
    fn licensing_buffer_extraction() {
        let mut ev = event(L3_LIBRARY, "_oecc34_DeriveKeysFromSessionKey");
        ev.args = vec![vec![1], vec![2], vec![3]];
        let buffers = licensing_buffers(&[ev, event(L3_LIBRARY, "_oecc04_OpenSession")]);
        assert_eq!(buffers.len(), 1);
        assert_eq!(buffers[0].1.len(), 3);
    }
}
