//! The headline experiment: the monitor must re-derive Table I of the
//! paper from observable behaviour alone.

use wideleak_monitor::classify::{KeyUsage, LegacyPlayback, Protection, WidevineUse};
use wideleak_monitor::report::{render_insights, render_table_1};
use wideleak_monitor::study::{pinning_blocks_without_bypass, run_study, StudyReport};
use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

fn study() -> StudyReport {
    let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
    run_study(&eco).expect("study completes")
}

/// One expected Table-I row.
struct Expected {
    app: &'static str,
    q1: WidevineUse,
    video: Protection,
    audio: Protection,
    subtitles: Protection,
    q3: KeyUsage,
    q4: LegacyPlayback,
}

fn expected_table_1() -> Vec<Expected> {
    use KeyUsage::*;
    use LegacyPlayback::*;
    use Protection::*;
    use WidevineUse::*;
    vec![
        Expected {
            app: "Netflix",
            q1: Yes,
            video: Encrypted,
            audio: Clear,
            subtitles: Clear,
            q3: Minimum,
            q4: Plays,
        },
        Expected {
            app: "Disney+",
            q1: Yes,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Clear,
            q3: Minimum,
            q4: ProvisioningFails,
        },
        Expected {
            app: "Amazon Prime Video",
            q1: YesWithEmbeddedFallback,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Clear,
            q3: Recommended,
            q4: PlaysViaEmbeddedDrm,
        },
        Expected {
            app: "Hulu",
            q1: Yes,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Protection::Unknown,
            q3: KeyUsage::Unknown,
            q4: Plays,
        },
        Expected {
            app: "HBO Max",
            q1: Yes,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Clear,
            q3: KeyUsage::Unknown,
            q4: ProvisioningFails,
        },
        Expected {
            app: "Starz",
            q1: Yes,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Protection::Unknown,
            q3: KeyUsage::Minimum,
            q4: ProvisioningFails,
        },
        Expected {
            app: "myCANAL",
            q1: Yes,
            video: Encrypted,
            audio: Clear,
            subtitles: Clear,
            q3: Minimum,
            q4: Plays,
        },
        Expected {
            app: "Showtime",
            q1: Yes,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Clear,
            q3: Minimum,
            q4: Plays,
        },
        Expected {
            app: "OCS",
            q1: Yes,
            video: Encrypted,
            audio: Encrypted,
            subtitles: Clear,
            q3: Minimum,
            q4: Plays,
        },
        Expected {
            app: "Salto",
            q1: Yes,
            video: Encrypted,
            audio: Clear,
            subtitles: Clear,
            q3: Minimum,
            q4: Plays,
        },
    ]
}

#[test]
fn study_reproduces_table_1_exactly() {
    let report = study();
    let expected = expected_table_1();
    assert_eq!(report.findings.len(), expected.len());
    for exp in &expected {
        let f = report.app(exp.app).unwrap_or_else(|| panic!("missing row for {}", exp.app));
        assert_eq!(f.widevine_use, exp.q1, "{} Q1", exp.app);
        assert_eq!(f.assets.video, exp.video, "{} video", exp.app);
        assert_eq!(f.assets.audio, exp.audio, "{} audio", exp.app);
        assert_eq!(f.assets.subtitles, exp.subtitles, "{} subtitles", exp.app);
        assert_eq!(f.key_usage, exp.q3, "{} Q3", exp.app);
        assert_eq!(f.legacy, exp.q4, "{} Q4", exp.app);
    }
}

#[test]
fn every_widevine_app_uses_l1_on_the_modern_device() {
    // §IV-C Q1: "the L1 TEE-based mode is popular" — in the simulator,
    // every platform-Widevine app runs L1 on the Pixel-class device.
    let report = study();
    for f in &report.findings {
        assert!(f.l1_on_modern_device, "{} should use L1 on the modern device", f.app_name);
    }
}

#[test]
fn per_resolution_keys_are_distinct_wherever_observable() {
    // §IV-C Q3: "all evaluated OTT apps properly encrypt their videos
    // with different keys depending on the resolution."
    let report = study();
    for f in &report.findings {
        match f.key_usage {
            KeyUsage::Unknown => assert_eq!(f.per_resolution_keys_distinct, None),
            _ => assert_eq!(
                f.per_resolution_keys_distinct,
                Some(true),
                "{} per-resolution keys",
                f.app_name
            ),
        }
    }
}

#[test]
fn netflix_uri_channel_is_observed_and_pierced() {
    // §IV-C Q2: Netflix protects URIs through the non-DASH API, but the
    // monitor recovers them from generic-decrypt output dumps.
    let report = study();
    let netflix = report.app("Netflix").unwrap();
    assert!(netflix.uri_channel_observed);
    // Everybody else serves plaintext manifests.
    for f in report.findings.iter().filter(|f| f.app_name != "Netflix") {
        assert!(!f.uri_channel_observed, "{}", f.app_name);
    }
}

#[test]
fn legacy_playback_is_capped_at_qhd() {
    // §IV-D: "the best quality that we get is unsurprisingly 960x540".
    let report = study();
    for f in &report.findings {
        if let Some(res) = f.legacy_resolution {
            assert_eq!(res, (960, 540), "{} legacy resolution", f.app_name);
        }
    }
}

#[test]
fn pinning_alone_defeats_interception() {
    // §IV-C Q2 control: without the repinning bypass the proxy breaks
    // the handshake (which is why the Frida bypass is needed at all).
    let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
    assert!(pinning_blocks_without_bypass(&eco));
}

#[test]
fn rendered_table_contains_every_row() {
    let report = study();
    let table = render_table_1(&report);
    for exp in expected_table_1() {
        assert!(table.contains(exp.app), "table missing {}", exp.app);
    }
    let insights = render_insights(&report);
    assert!(insights.contains("apps relying on Widevine: 10/10"));
    assert!(insights.contains("audio in clear: 3"));
    assert!(insights.contains("recommendation: 1"));
    assert!(insights.contains("revoked devices: 7/10 (refusing: 3)"));
}
