//! Subscriber accounts and tokens.

use std::collections::HashSet;

use parking_lot::RwLock;

/// The subscriber database shared by the backend servers.
#[derive(Debug, Default)]
pub struct AccountRegistry {
    tokens: RwLock<HashSet<String>>,
}

impl AccountRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes `user` to `app`, returning the bearer token.
    pub fn subscribe(&self, app: &str, user: &str) -> String {
        let token = Self::token_for(app, user);
        self.tokens.write().insert(token.clone());
        token
    }

    /// The deterministic token format (bearer tokens in the simulator are
    /// not secrets worth modelling).
    pub fn token_for(app: &str, user: &str) -> String {
        format!("token:{app}:{user}")
    }

    /// Validates a token.
    pub fn is_valid(&self, token: &str) -> bool {
        self.tokens.read().contains(token)
    }

    /// Cancels a subscription, returning whether it existed.
    pub fn unsubscribe(&self, app: &str, user: &str) -> bool {
        self.tokens.write().remove(&Self::token_for(app, user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_validate_unsubscribe() {
        let reg = AccountRegistry::new();
        let token = reg.subscribe("netflix", "alice");
        assert!(reg.is_valid(&token));
        assert!(!reg.is_valid("token:netflix:bob"));
        assert!(reg.unsubscribe("netflix", "alice"));
        assert!(!reg.is_valid(&token));
        assert!(!reg.unsubscribe("netflix", "alice"));
    }

    #[test]
    fn tokens_scope_by_app_and_user() {
        let reg = AccountRegistry::new();
        reg.subscribe("hulu", "alice");
        assert!(!reg.is_valid(&AccountRegistry::token_for("netflix", "alice")));
        assert!(!reg.is_valid(&AccountRegistry::token_for("hulu", "bob")));
    }
}
