//! Adaptive-bitrate playback: bandwidth monitor, rate-adaptation
//! controller and the per-play outcome record.
//!
//! The shape follows the AWStream pattern: an offline
//! bandwidth-vs-quality profile (the MPD's declared representation
//! ladder) plus an online controller — an EWMA throughput estimator
//! ([`BwMonitor`]) feeding a hysteresis stepper
//! ([`RateAdaptationController`]) that walks the ladder one tier up at
//! a time and drops freely under pressure. All arithmetic is integer
//! permille math so rendered study reports are byte-identical per seed.

/// Tunables for one adaptive playback session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptConfig {
    /// How many media chunks the session plays (the packaged segments
    /// are looped to reach this count).
    pub chunks: usize,
    /// Wall duration of one chunk in milliseconds.
    pub segment_duration_ms: u64,
    /// Fraction of the estimated throughput the controller may spend,
    /// in permille (e.g. 800 = 80% safety margin).
    pub safety_margin_permille: u64,
    /// Minimum buffer level before an upswitch is allowed.
    pub up_buffer_ms: u64,
    /// Buffer cap: once full, the client idles (draining the buffer and
    /// accruing link burst tokens) instead of fetching ahead.
    pub max_buffer_ms: u64,
    /// EWMA smoothing factor in permille (weight of the newest sample).
    pub ewma_alpha_permille: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            chunks: 16,
            segment_duration_ms: 4_000,
            safety_margin_permille: 800,
            up_buffer_ms: 8_000,
            max_buffer_ms: 16_000,
            ewma_alpha_permille: 300,
        }
    }
}

impl AdaptConfig {
    /// A CI-sized session: half the chunks, same controller behaviour.
    #[must_use]
    pub fn quick() -> Self {
        AdaptConfig { chunks: 8, ..AdaptConfig::default() }
    }
}

/// EWMA throughput estimator over completed segment fetches.
#[derive(Debug, Clone)]
pub struct BwMonitor {
    estimate_bps: u64,
    alpha_permille: u64,
}

impl BwMonitor {
    /// A monitor with no samples yet (estimate 0 until the first
    /// fetch completes).
    #[must_use]
    pub fn new(alpha_permille: u64) -> Self {
        BwMonitor { estimate_bps: 0, alpha_permille: alpha_permille.min(1000) }
    }

    /// Records one completed fetch of `bits` taking `elapsed_ms`.
    pub fn record(&mut self, bits: u64, elapsed_ms: u64) {
        let sample = u64::try_from(u128::from(bits) * 1000 / u128::from(elapsed_ms.max(1)))
            .unwrap_or(u64::MAX);
        self.estimate_bps = if self.estimate_bps == 0 {
            sample
        } else {
            let a = u128::from(self.alpha_permille);
            let blended = a * u128::from(sample) + (1000 - a) * u128::from(self.estimate_bps);
            u64::try_from(blended / 1000).unwrap_or(u64::MAX)
        };
    }

    /// The smoothed throughput estimate in bits/second.
    #[must_use]
    pub fn estimate_bps(&self) -> u64 {
        self.estimate_bps
    }
}

/// Hysteresis rate stepper over an ascending bandwidth ladder.
///
/// Invariant: `decide` never returns a tier whose declared bandwidth
/// exceeds the safety-margined budget while a cheaper tier exists — the
/// cheapest tier is the only one ever selected over budget (there is
/// nothing below it to fall back to).
#[derive(Debug, Clone)]
pub struct RateAdaptationController {
    current: usize,
    safety_margin_permille: u64,
    up_buffer_ms: u64,
}

impl RateAdaptationController {
    /// A controller starting at the cheapest tier.
    #[must_use]
    pub fn new(config: &AdaptConfig) -> Self {
        RateAdaptationController {
            current: 0,
            safety_margin_permille: config.safety_margin_permille.min(1000),
            up_buffer_ms: config.up_buffer_ms,
        }
    }

    /// The tier index the controller currently plays.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current
    }

    /// The spendable budget for an estimate, in bits/second.
    #[must_use]
    pub fn budget_bps(&self, estimate_bps: u64) -> u64 {
        u64::try_from(u128::from(estimate_bps) * u128::from(self.safety_margin_permille) / 1000)
            .unwrap_or(u64::MAX)
    }

    /// Picks the tier for the next chunk given the declared-bandwidth
    /// ladder (ascending), the current throughput estimate and the
    /// buffer level. Steps up at most one tier per call and only with
    /// `buffer_ms` at or above the up-switch threshold; steps down
    /// freely to the best affordable tier.
    pub fn decide(&mut self, ladder_bps: &[u64], estimate_bps: u64, buffer_ms: u64) -> usize {
        debug_assert!(ladder_bps.windows(2).all(|w| w[0] <= w[1]), "ladder must ascend");
        if ladder_bps.is_empty() {
            return 0;
        }
        let budget = self.budget_bps(estimate_bps);
        let ideal = ladder_bps.iter().rposition(|&bps| bps <= budget).unwrap_or(0);
        let current = self.current.min(ladder_bps.len() - 1);
        self.current = if ideal > current {
            if buffer_ms >= self.up_buffer_ms {
                current + 1
            } else {
                current
            }
        } else {
            ideal
        };
        self.current
    }
}

/// What one adaptive playback session did, on the client's local
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdaptiveOutcome {
    /// Representation id fetched for each chunk, in order.
    pub rep_sequence: Vec<String>,
    /// Number of up-switches across the session.
    pub switches_up: u64,
    /// Number of down-switches across the session.
    pub switches_down: u64,
    /// Licenses fetched (one per representation epoch for apps with
    /// visible key ids; a single open request otherwise).
    pub license_fetches: u64,
    /// Local-timeline timestamps (ms) at which licenses were fetched —
    /// the renewal-storm evidence.
    pub license_times_ms: Vec<u64>,
    /// Total time the buffer ran dry, in milliseconds.
    pub rebuffer_ms: u64,
    /// Total presentation time played, in milliseconds.
    pub played_ms: u64,
    /// Decrypted video samples across every chunk, in order.
    pub video_samples: Vec<Vec<u8>>,
    /// The monitor's final throughput estimate in bits/second.
    pub final_estimate_bps: u64,
}

impl AdaptiveOutcome {
    /// Total representation switches (up + down).
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches_up + self.switches_down
    }

    /// Rebuffer ratio in permille of presentation time.
    #[must_use]
    pub fn rebuffer_permille(&self) -> u64 {
        if self.played_ms == 0 {
            return 0;
        }
        u64::try_from(u128::from(self.rebuffer_ms) * 1000 / u128::from(self.played_ms))
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LADDER: [u64; 3] = [1_080_000, 1_440_000, 2_160_000];

    #[test]
    fn starts_at_the_cheapest_tier() {
        let mut c = RateAdaptationController::new(&AdaptConfig::default());
        assert_eq!(c.current(), 0);
        // No estimate yet: budget 0 keeps us at the floor.
        assert_eq!(c.decide(&LADDER, 0, 0), 0);
    }

    #[test]
    fn steps_up_one_tier_at_a_time_with_buffer() {
        let cfg = AdaptConfig::default();
        let mut c = RateAdaptationController::new(&cfg);
        // Estimate affords the top tier outright, but hysteresis climbs
        // one rung per decision — and only with a healthy buffer.
        assert_eq!(c.decide(&LADDER, 10_000_000, 0), 0, "buffer too thin to climb");
        assert_eq!(c.decide(&LADDER, 10_000_000, cfg.up_buffer_ms), 1);
        assert_eq!(c.decide(&LADDER, 10_000_000, cfg.up_buffer_ms), 2);
        assert_eq!(c.decide(&LADDER, 10_000_000, cfg.up_buffer_ms), 2, "already at the top");
    }

    #[test]
    fn drops_straight_to_the_affordable_tier() {
        let cfg = AdaptConfig::default();
        let mut c = RateAdaptationController::new(&cfg);
        c.decide(&LADDER, 10_000_000, cfg.up_buffer_ms);
        c.decide(&LADDER, 10_000_000, cfg.up_buffer_ms);
        assert_eq!(c.current(), 2);
        // Congestion: estimate collapses; the drop is immediate and can
        // skip tiers.
        assert_eq!(c.decide(&LADDER, 1_200_000, cfg.up_buffer_ms), 0);
    }

    #[test]
    fn safety_margin_gates_the_budget() {
        let cfg = AdaptConfig::default();
        let mut c = RateAdaptationController::new(&cfg);
        // 1.5 Mbps estimate * 0.8 margin = 1.2 Mbps budget: tier 1
        // (1.44 Mbps) is not affordable even though raw estimate covers it.
        assert_eq!(c.decide(&LADDER, 1_500_000, cfg.up_buffer_ms), 0);
        assert_eq!(c.budget_bps(1_500_000), 1_200_000);
    }

    #[test]
    fn ewma_converges_toward_the_true_rate() {
        let mut m = BwMonitor::new(300);
        assert_eq!(m.estimate_bps(), 0);
        m.record(1_000_000, 1000); // first sample adopted outright
        assert_eq!(m.estimate_bps(), 1_000_000);
        for _ in 0..20 {
            m.record(4_000_000, 1000);
        }
        assert!(m.estimate_bps() > 3_900_000, "estimate {}", m.estimate_bps());
        m.record(0, 0); // degenerate sample must not divide by zero
    }
}
