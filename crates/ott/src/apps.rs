//! The ten evaluated OTT apps: their profiles and their client behaviour.
//!
//! Each [`AppProfile`] encodes the ground truth of one Table-I row — what
//! the app *actually does* with Widevine. The [`OttApp`] client then
//! behaves accordingly when driven: it provisions (with or without
//! revocation enforcement), fetches manifests (plaintext or through the
//! Netflix-style secure channel), requests licenses, and decrypts tracks
//! through the Android DRM framework — or, for Amazon Prime Video on
//! L3-only devices, through its embedded Widevine library that never
//! touches the platform CDM.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wideleak_android_drm::binder::Transport;
use wideleak_android_drm::mediacrypto::MediaCrypto;
use wideleak_android_drm::mediadrm::MediaDrm;
use wideleak_android_drm::playback::{
    play_adaptive_content, play_protected_content, AdaptiveChunk, MediaBundle, PlaybackTrace,
};
use wideleak_android_drm::DrmError;
use wideleak_bmff::fragment::{InitSegment, MediaSegment};
use wideleak_bmff::types::{KeyId, WIDEVINE_SYSTEM_ID};
use wideleak_cdm::messages::{LicenseResponse, ProvisioningResponse};
use wideleak_cdm::oemcrypto::CdmCore;
use wideleak_cdm::wire::TlvWriter;
use wideleak_cdm::CdmError;
use wideleak_cenc::keys::MemoryKeyStore;
use wideleak_cenc::track::decrypt_segment;
use wideleak_dash::mpd::{AdaptationSet, ContentType, Mpd, Representation};
use wideleak_device::catalog::{CdmVersion, SecurityLevel};
use wideleak_device::net::{NetError, NetworkStack, RemoteEndpoint};
use wideleak_device::Device;
use wideleak_faults::{ResiliencePolicy, VirtualClock};

use crate::adapt::{AdaptConfig, AdaptiveOutcome, BwMonitor, RateAdaptationController};
use crate::bandwidth::ClientLink;
use crate::cdn::{CdnAppConfig, URI_CHANNEL_IV};
use crate::content::{kid_from_label, AudioProtection, L3_MAX_HEIGHT, SEGMENTS_PER_REP};
use crate::license::{uri_channel_label, LicensePolicy};
use crate::OttError;

/// The ground-truth behaviour of one evaluated app (a Table-I row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppProfile {
    /// Display name, as in the paper.
    pub name: &'static str,
    /// URL-safe identifier.
    pub slug: &'static str,
    /// Play-store installs at the time of the study, in millions.
    pub installs_millions: u32,
    /// Audio protection policy (Q2/Q3).
    pub audio: AudioProtection,
    /// Whether the app honours Widevine revocation (Q4).
    pub enforce_revocation: bool,
    /// Whether the app falls back to an embedded DRM when only L3 is
    /// available (Amazon Prime Video).
    pub custom_drm_on_l3: bool,
    /// Whether manifest URIs travel through the non-DASH secure channel
    /// (Netflix).
    pub uri_protection: bool,
    /// Whether subtitle tracks are discoverable in the MPD.
    pub subtitles_in_mpd: bool,
    /// Whether `default_KID` metadata is visible (regional restrictions
    /// hide it).
    pub metadata_kids_visible: bool,
    /// Whether the app runs SafetyNet-style attestation and refuses to
    /// play in a visibly tampered environment (§IV-B: "most evaluated OTT
    /// apps apply anti-debugging techniques ... or rely on SafetyNet").
    pub uses_safetynet: bool,
    /// Whether the app *never* touches platform Widevine, shipping its own
    /// DRM on every device class — the "custom DRM implementation like in
    /// Indian music industry" the paper's Q1 contrasts against. None of
    /// the ten evaluated apps does this; the profile axis exists so the
    /// monitor's `WidevineUse::No` classification is exercisable end to
    /// end.
    pub always_custom_drm: bool,
}

impl AppProfile {
    /// The CDN-side behaviour this profile implies.
    pub fn cdn_config(&self) -> CdnAppConfig {
        CdnAppConfig {
            app: self.slug.to_owned(),
            audio: self.audio,
            subtitles_in_mpd: self.subtitles_in_mpd,
            metadata_kids_visible: self.metadata_kids_visible,
            uri_protection: self.uri_protection,
        }
    }

    /// The license-server policy this profile implies.
    pub fn license_policy(&self) -> LicensePolicy {
        LicensePolicy {
            audio: self.audio,
            enforce_revocation: self.enforce_revocation,
            uri_channel: self.uri_protection,
        }
    }
}

/// The ten apps of the study, in Table-I order, with their measured
/// behaviours as ground truth.
pub fn evaluated_apps() -> Vec<AppProfile> {
    vec![
        AppProfile {
            name: "Netflix",
            slug: "netflix",
            installs_millions: 1000,
            audio: AudioProtection::Clear,
            enforce_revocation: false,
            custom_drm_on_l3: false,
            uri_protection: true,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: true,
            always_custom_drm: false,
        },
        AppProfile {
            name: "Disney+",
            slug: "disney",
            installs_millions: 100,
            audio: AudioProtection::SharedKeyWithVideo,
            enforce_revocation: true,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: true,
            always_custom_drm: false,
        },
        AppProfile {
            name: "Amazon Prime Video",
            slug: "amazon",
            installs_millions: 100,
            audio: AudioProtection::DistinctKey,
            enforce_revocation: false,
            custom_drm_on_l3: true,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: true,
            always_custom_drm: false,
        },
        AppProfile {
            name: "Hulu",
            slug: "hulu",
            installs_millions: 50,
            audio: AudioProtection::SharedKeyWithVideo,
            enforce_revocation: false,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: false,
            metadata_kids_visible: false,
            uses_safetynet: true,
            always_custom_drm: false,
        },
        AppProfile {
            name: "HBO Max",
            slug: "hbomax",
            installs_millions: 10,
            audio: AudioProtection::SharedKeyWithVideo,
            enforce_revocation: true,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: false,
            uses_safetynet: true,
            always_custom_drm: false,
        },
        AppProfile {
            name: "Starz",
            slug: "starz",
            installs_millions: 10,
            audio: AudioProtection::SharedKeyWithVideo,
            enforce_revocation: true,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: false,
            metadata_kids_visible: true,
            uses_safetynet: true,
            always_custom_drm: false,
        },
        AppProfile {
            name: "myCANAL",
            slug: "mycanal",
            installs_millions: 10,
            audio: AudioProtection::Clear,
            enforce_revocation: false,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: false,
            always_custom_drm: false,
        },
        AppProfile {
            name: "Showtime",
            slug: "showtime",
            installs_millions: 5,
            audio: AudioProtection::SharedKeyWithVideo,
            enforce_revocation: false,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: false,
            always_custom_drm: false,
        },
        AppProfile {
            name: "OCS",
            slug: "ocs",
            installs_millions: 1,
            audio: AudioProtection::SharedKeyWithVideo,
            enforce_revocation: false,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: false,
            always_custom_drm: false,
        },
        AppProfile {
            name: "Salto",
            slug: "salto",
            installs_millions: 1,
            audio: AudioProtection::Clear,
            enforce_revocation: false,
            custom_drm_on_l3: false,
            uri_protection: false,
            subtitles_in_mpd: true,
            metadata_kids_visible: true,
            uses_safetynet: false,
            always_custom_drm: false,
        },
    ]
}

/// A decompiled APK's class-reference census — what the paper's *static*
/// analysis prong sees ("we decompile the Java classes of the evaluated
/// OTT apps to identify some of the included Android classes", §IV-B).
///
/// Static analysis cannot distinguish live call sites from dead code,
/// which is exactly why the paper errs "on the side of soundness" and
/// confirms every static hit dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Apk {
    /// References that playback actually exercises.
    pub live_references: Vec<&'static str>,
    /// References present in the bytecode but never executed (dead code,
    /// vendored SDKs, stale A/B experiments).
    pub dead_code_references: Vec<&'static str>,
}

impl Apk {
    /// Everything a decompiler sees: live and dead references merged,
    /// indistinguishably.
    pub fn visible_references(&self) -> Vec<&'static str> {
        let mut out = self.live_references.clone();
        out.extend(&self.dead_code_references);
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl AppProfile {
    /// The app's decompiled-APK view. Every evaluated app references the
    /// Android DRM API (they all use Widevine); some carry extra dead
    /// code that a purely static analysis would over-report.
    pub fn apk(&self) -> Apk {
        let mut live =
            vec!["android.media.MediaDrm", "android.media.MediaCrypto", "android.media.MediaCodec"];
        if self.uri_protection {
            // The non-DASH generic crypto entry points.
            live.push("android.media.MediaDrm$CryptoSession");
        }
        if self.custom_drm_on_l3 {
            live.push("com.amazon.drm.EmbeddedWidevineClient");
        }
        let dead = match self.slug {
            // A stale PlayReady integration left in the bytecode: the
            // classic static-analysis false positive.
            "mycanal" => vec!["com.microsoft.playready.PlayReadyFactory"],
            // An unused screen-capture detector.
            "starz" => vec!["com.starz.drm.LegacyScreenGuard"],
            _ => Vec::new(),
        };
        Apk { live_references: live, dead_code_references: dead }
    }
}

/// Encodes a backend error onto the wire (the string side of
/// [`RemoteEndpoint`]).
pub fn encode_backend_error(e: &OttError) -> String {
    match e {
        OttError::Unauthorized => "UNAUTHORIZED".to_owned(),
        OttError::DeviceRevoked { cdm_version } => format!("REVOKED:{cdm_version}"),
        OttError::NotFound { what } => format!("NOTFOUND:{what}"),
        OttError::Net(NetError::ConnectionReset) => "NETRESET".to_owned(),
        other => format!("ERROR:{other}"),
    }
}

/// Decodes a backend error string back into a typed error.
pub fn decode_backend_error(s: &str) -> OttError {
    if s == "UNAUTHORIZED" {
        OttError::Unauthorized
    } else if s == "NETRESET" {
        OttError::Net(NetError::ConnectionReset)
    } else if let Some(v) = s.strip_prefix("REVOKED:") {
        OttError::DeviceRevoked { cdm_version: v.to_owned() }
    } else if let Some(what) = s.strip_prefix("NOTFOUND:") {
        OttError::NotFound { what: what.to_owned() }
    } else {
        OttError::Protocol { reason: s.to_owned() }
    }
}

/// The client's own view of its resilience behaviour, kept as atomics so
/// concurrent playbacks inside one app aggregate safely.
#[derive(Debug, Default)]
pub struct RetryStats {
    retries: AtomicU64,
    timeouts: AtomicU64,
    l3_fallbacks: AtomicU64,
    renewals: AtomicU64,
}

/// A point-in-time copy of [`RetryStats`] — what the resilience study
/// classifies outcomes from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStatsSnapshot {
    /// Retries performed (transport and playback level combined).
    pub retries: u64,
    /// Calls abandoned for exceeding the per-call budget.
    pub timeouts: u64,
    /// Playbacks degraded from L1/HD to L3-class quality.
    pub l3_fallbacks: u64,
    /// Licenses renewed after an expiry.
    pub renewals: u64,
}

impl RetryStats {
    fn snapshot(&self) -> RetryStatsSnapshot {
        RetryStatsSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            l3_fallbacks: self.l3_fallbacks.load(Ordering::Relaxed),
            renewals: self.renewals.load(Ordering::Relaxed),
        }
    }
}

/// The result of one playback attempt.
#[derive(Debug, Clone)]
pub struct PlaybackOutcome {
    /// Whether the app used the platform Widevine (false for Amazon's
    /// embedded fallback).
    pub used_platform_widevine: bool,
    /// The video resolution actually played.
    pub resolution: (u32, u32),
    /// Decrypted video samples.
    pub video_samples: Vec<Vec<u8>>,
    /// Decrypted (or clear) audio samples.
    pub audio_samples: Vec<Vec<u8>>,
    /// Subtitle text, when the app surfaces subtitles.
    pub subtitle_text: Option<String>,
    /// The Figure-1 trace of the video playback (platform path only).
    pub trace: Option<PlaybackTrace>,
}

/// The embedded Widevine library Amazon ships inside its app: a private
/// [`CdmCore`] that never crosses the platform DRM API (so the monitor's
/// hooks see nothing) and reports a current CDM version (so revocation
/// never bites). The core is internally synchronized, so concurrent
/// playbacks inside one app share it directly.
pub struct EmbeddedWidevine {
    core: CdmCore,
}

impl std::fmt::Debug for EmbeddedWidevine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EmbeddedWidevine(in-app CDM)")
    }
}

impl EmbeddedWidevine {
    /// Creates the embedded library around an app-baked keybox.
    pub fn new(keybox: wideleak_cdm::keybox::Keybox) -> Self {
        let core = CdmCore::new(CdmVersion::new(16, 0, 0), SecurityLevel::L3);
        core.install_keybox(keybox);
        EmbeddedWidevine { core }
    }
}

/// An installed app instance bound to one device stack and one account.
pub struct OttApp {
    profile: AppProfile,
    backend: Arc<dyn RemoteEndpoint>,
    network: Arc<NetworkStack>,
    binder: Arc<dyn Transport>,
    device: Option<Arc<Device>>,
    device_level: SecurityLevel,
    account_token: String,
    nonce_counter: AtomicU64,
    embedded: Option<EmbeddedWidevine>,
    policy: ResiliencePolicy,
    clock: Arc<VirtualClock>,
    stats: RetryStats,
}

impl std::fmt::Debug for OttApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OttApp({} on {} device)", self.profile.name, self.device_level)
    }
}

impl OttApp {
    /// Installs the app. `embedded` carries Amazon's in-app CDM when the
    /// profile uses one.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        profile: AppProfile,
        backend: Arc<dyn RemoteEndpoint>,
        network: Arc<NetworkStack>,
        binder: Arc<dyn Transport>,
        device_level: SecurityLevel,
        account_token: String,
        embedded: Option<EmbeddedWidevine>,
    ) -> Self {
        OttApp {
            profile,
            backend,
            network,
            binder,
            device: None,
            device_level,
            account_token,
            nonce_counter: AtomicU64::new(1),
            embedded,
            policy: ResiliencePolicy::default(),
            clock: Arc::new(VirtualClock::new()),
            stats: RetryStats::default(),
        }
    }

    /// Binds the app to its host device so SafetyNet-style checks can see
    /// the environment (ecosystem wiring calls this at install).
    pub fn with_device(mut self, device: Arc<Device>) -> Self {
        self.device = Some(device);
        self
    }

    /// Configures the app's resilience policy and binds it to the
    /// ecosystem's virtual clock (so injected latency and client backoff
    /// share one timeline).
    #[must_use]
    pub fn with_resilience(mut self, policy: ResiliencePolicy, clock: Arc<VirtualClock>) -> Self {
        self.policy = policy;
        self.clock = clock;
        self
    }

    /// What the client did to survive: retries, timeouts, degradations,
    /// renewals.
    pub fn retry_stats(&self) -> RetryStatsSnapshot {
        self.stats.snapshot()
    }

    /// The SafetyNet-style check: refuse to run when a detectable
    /// debugger is attached to the app process. Hooking the *CDM* process
    /// (the WideLeak methodology) does not trip it — "no SafetyNet ...
    /// can be of any use, since attackers only need to monitor Widevine
    /// that runs in a different process" (§V-B).
    fn attestation_passes(&self) -> bool {
        if !self.profile.uses_safetynet {
            return true;
        }
        !self.device.as_ref().is_some_and(|d| d.is_app_debugger_attached())
    }

    /// The app's profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn next_nonce(&self) -> [u8; 16] {
        let n = self.nonce_counter.fetch_add(1, Ordering::SeqCst);
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&n.to_be_bytes());
        let mut tag = 0u64;
        for b in self.profile.slug.bytes() {
            tag = tag.rotate_left(8) ^ b as u64;
        }
        nonce[8..].copy_from_slice(&tag.to_be_bytes());
        nonce
    }

    /// One request, no retries: pinned TLS to the backend, with the
    /// per-call budget enforced on the virtual clock (injected latency
    /// pushes a call over it).
    fn send_once(&self, path: &str, body: &[u8]) -> Result<Vec<u8>, OttError> {
        let started = self.clock.now_ms();
        let result = self.network.send(self.backend.as_ref(), path, body).map_err(|e| match e {
            NetError::EndpointError { message } => decode_backend_error(&message),
            other => OttError::Net(other),
        });
        if self.clock.now_ms().saturating_sub(started) > self.policy.timeout_ms {
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            return Err(OttError::Net(NetError::TimedOut));
        }
        result
    }

    /// Whether retrying can plausibly help: server 5xx-class responses
    /// and transport failures, never auth/policy refusals.
    fn is_transient(error: &OttError) -> bool {
        matches!(
            error,
            OttError::Protocol { .. }
                | OttError::Net(NetError::ConnectionReset | NetError::TimedOut)
                | OttError::Drm(
                    DrmError::BinderDied
                        | DrmError::ServerPanic
                        | DrmError::Wire(_)
                        | DrmError::Timeout { .. }
                )
        )
    }

    /// Sleeps (on the virtual clock) before retry `attempt` and records
    /// the retry in both the app's stats and telemetry.
    fn backoff(&self, attempt: u32, op: &str) {
        let mut salt = 0u64;
        for b in op.bytes() {
            salt = salt.rotate_left(7) ^ u64::from(b);
        }
        self.clock.advance_ms(self.policy.backoff_delay_ms(attempt, salt));
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
        if wideleak_telemetry::is_enabled() {
            wideleak_telemetry::incr("retry.attempt");
        }
    }

    /// Sends with the policy's bounded retry-and-backoff loop.
    fn send(&self, path: &str, body: &[u8]) -> Result<Vec<u8>, OttError> {
        let mut attempt = 0u32;
        loop {
            match self.send_once(path, body) {
                Err(e) if attempt < self.policy.max_retries && Self::is_transient(&e) => {
                    attempt += 1;
                    self.backoff(attempt, path);
                }
                result => return result,
            }
        }
    }

    /// Whether this playback will bypass the platform Widevine.
    fn uses_embedded_drm(&self) -> bool {
        if self.embedded.is_none() {
            return false;
        }
        self.profile.always_custom_drm
            || (self.profile.custom_drm_on_l3 && self.device_level == SecurityLevel::L3)
    }

    /// Ensures the platform CDM holds a Device RSA Key, provisioning if
    /// needed through the app's backend (which applies the app's
    /// revocation stance).
    ///
    /// # Errors
    ///
    /// Returns [`OttError::DeviceRevoked`] when the backend refuses.
    pub fn ensure_provisioned(&self) -> Result<(), OttError> {
        let drm = MediaDrm::new(self.binder.clone(), WIDEVINE_SYSTEM_ID)?;
        if drm.is_provisioned()? {
            return Ok(());
        }
        let nonce = self.next_nonce();
        let request = drm.get_provision_request(nonce)?;
        let response = self.send(&format!("provision/{}", self.profile.slug), &request)?;
        drm.provide_provision_response(nonce, response)?;
        Ok(())
    }

    /// Runs the provisioning exchange unconditionally, even when the CDM
    /// already holds a Device RSA Key — the fleet "check-in" after a
    /// keybox rotation or data wipe. Idempotent: the backend returns the
    /// same RSA key for this device identity.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ensure_provisioned`](Self::ensure_provisioned).
    pub fn reprovision(&self) -> Result<(), OttError> {
        let drm = MediaDrm::new(self.binder.clone(), WIDEVINE_SYSTEM_ID)?;
        let nonce = self.next_nonce();
        let request = drm.get_provision_request(nonce)?;
        let response = self.send(&format!("provision/{}", self.profile.slug), &request)?;
        drm.provide_provision_response(nonce, response)?;
        Ok(())
    }

    /// Whether an error is the CDM telling us the license aged out — the
    /// one failure license renewal fixes.
    fn is_expiry(error: &OttError) -> bool {
        matches!(
            error,
            OttError::Drm(DrmError::Cdm(CdmError::KeyExpired))
                | OttError::Cdm(CdmError::KeyExpired)
        )
    }

    /// Whether degrading from HD/L1 to L3-class playback can help: content
    /// and protocol failures yes; binder-transport deaths hit every
    /// security level equally, so no.
    fn fallback_can_help(error: &OttError) -> bool {
        matches!(error, OttError::Protocol { .. } | OttError::NotFound { .. })
    }

    /// Plays a title end to end: provisions, fetches the manifest,
    /// licenses, downloads and decrypts video/audio/subtitles.
    ///
    /// Failures run through the app's [`ResiliencePolicy`]: expired
    /// licenses are renewed once, transient errors retried with backoff,
    /// and persistent HD failures degraded to L3-class playback when the
    /// policy allows.
    ///
    /// # Errors
    ///
    /// Propagates every backend refusal and DRM failure the policy could
    /// not absorb.
    pub fn play(&self, title_id: &str) -> Result<PlaybackOutcome, OttError> {
        if !self.attestation_passes() {
            return Err(OttError::AttestationFailed);
        }
        if self.uses_embedded_drm() {
            return self.play_via_embedded(title_id);
        }
        self.ensure_provisioned()?;

        let mut attempt = 0u32;
        let mut renewed = false;
        let mut level = self.device_level;
        loop {
            match self.play_platform_at(title_id, level) {
                Err(e) if self.policy.renew_on_expiry && !renewed && Self::is_expiry(&e) => {
                    // A fresh session and license resets the key's loaded-at
                    // time; renewal does not consume the retry budget. The
                    // renewal is only *counted* once the retried playback
                    // succeeds — an attempt that dies with `KeyExpired`
                    // again is a failed renewal, not a renewal.
                    renewed = true;
                }
                Err(e) if attempt < self.policy.max_retries && Self::is_transient(&e) => {
                    attempt += 1;
                    self.backoff(attempt, "play");
                }
                Err(e)
                    if self.policy.l3_fallback
                        && level == SecurityLevel::L1
                        && Self::fallback_can_help(&e) =>
                {
                    // Graceful degradation: retry the whole pipeline at
                    // L3-class quality, with a fresh retry budget.
                    level = SecurityLevel::L3;
                    attempt = 0;
                    self.stats.l3_fallbacks.fetch_add(1, Ordering::Relaxed);
                    if wideleak_telemetry::is_enabled() {
                        wideleak_telemetry::incr("degraded.l3_fallback");
                    }
                }
                result => {
                    if renewed && result.is_ok() {
                        self.stats.renewals.fetch_add(1, Ordering::Relaxed);
                        if wideleak_telemetry::is_enabled() {
                            wideleak_telemetry::incr("license.renewed");
                        }
                    }
                    return result;
                }
            }
        }
    }

    /// Plays a title adaptively: the rate controller walks the MPD's
    /// representation ladder chunk by chunk, every segment fetch pays
    /// simulated transfer time on the client's bandwidth `link`, and
    /// representation switches re-license through the platform CDM
    /// (per-tier keys → real license churn; hidden key ids → one open
    /// license, no churn).
    ///
    /// The link is owned by the caller so a fixed mint order makes the
    /// whole session a pure function of the ecosystem seed. Simulated
    /// transfer time is mirrored onto the shared virtual clock.
    ///
    /// # Errors
    ///
    /// Propagates backend refusals and DRM failures; apps that bypass
    /// the platform CDM (embedded DRM) cannot adapt.
    pub fn play_adaptive(
        &self,
        title_id: &str,
        config: &AdaptConfig,
        link: &mut ClientLink,
    ) -> Result<AdaptiveOutcome, OttError> {
        if !self.attestation_passes() {
            return Err(OttError::AttestationFailed);
        }
        if self.uses_embedded_drm() {
            return Err(OttError::Protocol {
                reason: "adaptive playback requires the platform CDM".into(),
            });
        }
        self.ensure_provisioned()?;

        let mpd = self.fetch_mpd(title_id)?;
        let video_set = mpd
            .adaptation_sets()
            .find(|s| s.content_type == ContentType::Video)
            .ok_or_else(|| OttError::Protocol { reason: "MPD has no video".into() })?;
        let max_height =
            if self.device_level == SecurityLevel::L1 { u32::MAX } else { L3_MAX_HEIGHT };
        // The offline profile: the playable ladder in ascending declared
        // bandwidth (deterministically tie-broken like single-rep picks).
        let mut ladder: Vec<&Representation> = video_set
            .representations
            .iter()
            .filter(|r| r.resolution.is_some_and(|(_, h)| h <= max_height))
            .collect();
        ladder.sort_by_key(|r| (r.bandwidth, r.resolution.map_or(0, |(_, h)| h), r.id.clone()));
        if ladder.is_empty() {
            return Err(OttError::Protocol { reason: "no playable resolution".into() });
        }
        let ladder_bps: Vec<u64> = ladder.iter().map(|r| u64::from(r.bandwidth)).collect();

        struct LoopState<'l> {
            link: &'l mut ClientLink,
            monitor: BwMonitor,
            controller: RateAdaptationController,
            bundles: std::collections::HashMap<String, MediaBundle>,
            buffer_ms: u64,
            rebuffer_ms: u64,
            license_times_ms: Vec<u64>,
        }
        let state = std::cell::RefCell::new(LoopState {
            link,
            monitor: BwMonitor::new(config.ewma_alpha_permille),
            controller: RateAdaptationController::new(config),
            bundles: std::collections::HashMap::new(),
            buffer_ms: 0,
            rebuffer_ms: 0,
            license_times_ms: Vec::new(),
        });

        let license_path = format!("license/{}/{title_id}", self.profile.slug);
        let token = self.account_token.clone();
        let playback = play_adaptive_content(
            self.binder.clone(),
            WIDEVINE_SYSTEM_ID,
            title_id,
            config.chunks,
            |i| {
                let mut st = state.borrow_mut();
                let estimate = st.monitor.estimate_bps();
                let buffer = st.buffer_ms;
                let tier = st.controller.decide(&ladder_bps, estimate, buffer);
                let rep = ladder[tier];
                if !st.bundles.contains_key(&rep.id) {
                    let bundle = self
                        .fetch_bundle(&mpd, &rep.id)
                        .map_err(|e| DrmError::Cdm(CdmError::Rejected { reason: e.to_string() }))?;
                    st.bundles.insert(rep.id.clone(), bundle);
                }
                // Charge the fetch at the representation's declared
                // bandwidth over the segment's wall duration — the
                // virtual encoded size, independent of the synthetic
                // payload's byte count.
                let bits = u64::from(rep.bandwidth) * config.segment_duration_ms / 1000;
                let transfer = st.link.transfer(bits);
                st.monitor.record(bits, transfer.elapsed_ms);
                // Buffer model: playback drains while the fetch runs;
                // a dry buffer is rebuffering; a full one idles the
                // link (accruing burst) instead of fetching ahead.
                let drained = transfer.elapsed_ms.min(st.buffer_ms);
                st.rebuffer_ms += transfer.elapsed_ms - drained;
                st.buffer_ms = st.buffer_ms - drained + config.segment_duration_ms;
                if st.buffer_ms > config.max_buffer_ms {
                    let excess = st.buffer_ms - config.max_buffer_ms;
                    st.link.idle(excess);
                    st.buffer_ms = config.max_buffer_ms;
                }
                self.clock.advance_ms(transfer.elapsed_ms);
                if wideleak_telemetry::is_enabled() {
                    wideleak_telemetry::observe(
                        "adapt.transfer_ms",
                        std::time::Duration::from_millis(transfer.elapsed_ms),
                    );
                    if transfer.elapsed_ms > transfer.stalled_ms {
                        wideleak_telemetry::incr("adapt.chunk.fetched");
                    }
                    if transfer.stalled_ms > 0 {
                        wideleak_telemetry::incr("adapt.chunk.stalled");
                    }
                }
                let key_ids = if self.profile.metadata_kids_visible {
                    rep.default_kid()
                        .and_then(|hex| KeyId::from_hex(hex).ok())
                        .map(|k| vec![k])
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                let bundle = &st.bundles[&rep.id];
                let seg = i % SEGMENTS_PER_REP as usize;
                Ok(AdaptiveChunk {
                    rep_id: rep.id.clone(),
                    key_ids,
                    init: bundle.init.clone(),
                    segment: bundle.segments[seg].clone(),
                })
            },
            |request| {
                let mut st = state.borrow_mut();
                let at = st.link.now_ms();
                st.license_times_ms.push(at);
                drop(st);
                if wideleak_telemetry::is_enabled() {
                    wideleak_telemetry::incr("adapt.license.fetch");
                }
                let mut w = TlvWriter::new();
                w.string(1, &token).bytes(2, request);
                self.send(&license_path, &w.finish())
                    .map_err(|e| DrmError::Cdm(CdmError::Rejected { reason: e.to_string() }))
            },
            || self.next_nonce(),
        )?;

        let st = state.into_inner();
        let tier_of: std::collections::HashMap<&str, usize> =
            ladder.iter().enumerate().map(|(t, r)| (r.id.as_str(), t)).collect();
        let mut switches_up = 0u64;
        let mut switches_down = 0u64;
        for pair in playback.rep_sequence.windows(2) {
            let (from, to) = (tier_of[pair[0].as_str()], tier_of[pair[1].as_str()]);
            match to.cmp(&from) {
                std::cmp::Ordering::Greater => switches_up += 1,
                std::cmp::Ordering::Less => switches_down += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        if wideleak_telemetry::is_enabled() {
            wideleak_telemetry::add("adapt.switch.up", switches_up);
            wideleak_telemetry::add("adapt.switch.down", switches_down);
            wideleak_telemetry::observe(
                "adapt.rebuffer_ms",
                std::time::Duration::from_millis(st.rebuffer_ms),
            );
        }
        Ok(AdaptiveOutcome {
            rep_sequence: playback.rep_sequence,
            switches_up,
            switches_down,
            license_fetches: playback.license_fetches,
            license_times_ms: st.license_times_ms,
            rebuffer_ms: st.rebuffer_ms,
            played_ms: config.chunks as u64 * config.segment_duration_ms,
            video_samples: playback.frames.into_iter().map(|f| f.data).collect(),
            final_estimate_bps: st.monitor.estimate_bps(),
        })
    }

    /// One pass of the platform-Widevine playback pipeline at a given
    /// security level (the resilience loop in [`play`](Self::play) may
    /// run this more than once).
    fn play_platform_at(
        &self,
        title_id: &str,
        level: SecurityLevel,
    ) -> Result<PlaybackOutcome, OttError> {
        let mpd = self.fetch_mpd(title_id)?;
        let (resolution, video_rep_id, key_ids) = self.select_video_at(&mpd, level)?;

        // Video through the full Figure-1 driver.
        let bundle = self.fetch_bundle(&mpd, &video_rep_id)?;
        let license_path = format!("license/{}/{title_id}", self.profile.slug);
        let token = self.account_token.clone();
        let (frames, trace) = play_protected_content(
            self.binder.clone(),
            WIDEVINE_SYSTEM_ID,
            title_id,
            &key_ids,
            self.next_nonce(),
            |request| {
                let mut w = TlvWriter::new();
                w.string(1, &token).bytes(2, request);
                self.send(&license_path, &w.finish())
                    .map_err(|e| DrmError::Cdm(CdmError::Rejected { reason: e.to_string() }))
            },
            || Ok(bundle.clone()),
        )?;

        // Audio: licensed the same way when protected, plain fetch when
        // clear.
        let audio_samples = self.play_audio(&mpd, title_id)?;

        // Subtitles: fetched from the MPD when discoverable.
        let subtitle_text = self.fetch_subtitles(&mpd)?;

        Ok(PlaybackOutcome {
            used_platform_widevine: true,
            resolution,
            video_samples: frames.into_iter().map(|f| f.data).collect(),
            audio_samples,
            subtitle_text,
            trace: Some(trace),
        })
    }

    /// Fetches the manifest, retrying the whole fetch-and-parse when a
    /// truncated or garbled body slips past the transport (the bytes
    /// arrive fine; the parse is what fails).
    fn fetch_mpd(&self, title_id: &str) -> Result<Mpd, OttError> {
        let mut attempt = 0u32;
        loop {
            match self.fetch_mpd_once(title_id) {
                Err(e) if attempt < self.policy.max_retries && Self::is_transient(&e) => {
                    attempt += 1;
                    self.backoff(attempt, "fetch_mpd");
                }
                result => return result,
            }
        }
    }

    /// One manifest fetch and (for Netflix) secure-channel unwrap.
    fn fetch_mpd_once(&self, title_id: &str) -> Result<Mpd, OttError> {
        let path = format!("manifest/{}/{title_id}", self.profile.slug);
        let blob = self.send(&path, self.account_token.as_bytes())?;
        let xml = if self.profile.uri_protection {
            // License the URI-channel key, then decrypt through the
            // non-DASH generic API.
            let uri_kid = kid_from_label(&uri_channel_label(self.profile.slug, title_id));
            let drm = MediaDrm::new(self.binder.clone(), WIDEVINE_SYSTEM_ID)?;
            let session = drm.open_session(self.next_nonce())?;
            // Any failure past this point must still close the session, or
            // retried manifest fetches leak session-table slots.
            let result: Result<Vec<u8>, OttError> = (|| {
                let request = drm.get_key_request(session, title_id, &[uri_kid])?;
                let mut w = TlvWriter::new();
                w.string(1, &self.account_token).bytes(2, &request);
                let response =
                    self.send(&format!("license/{}/{title_id}", self.profile.slug), &w.finish())?;
                drm.provide_key_response(session, response)?;
                let crypto = MediaCrypto::new(&drm, session);
                Ok(crypto.generic_decrypt(uri_kid, URI_CHANNEL_IV, &blob)?)
            })();
            match result {
                Ok(xml) => {
                    drm.close_session(session)?;
                    xml
                }
                Err(e) => {
                    let _ = drm.close_session(session);
                    return Err(e);
                }
            }
        } else {
            blob
        };
        let text = String::from_utf8(xml)
            .map_err(|_| OttError::Protocol { reason: "manifest is not UTF-8".into() })?;
        Mpd::parse(&text).map_err(|e| OttError::Protocol { reason: format!("bad MPD: {e}") })
    }

    /// Picks the best representation a given security level permits (the
    /// embedded software DRM is always L3-class, whatever the hardware).
    #[allow(clippy::type_complexity)]
    fn select_video_at(
        &self,
        mpd: &Mpd,
        level: SecurityLevel,
    ) -> Result<((u32, u32), String, Vec<KeyId>), OttError> {
        let video_set = mpd
            .adaptation_sets()
            .find(|s| s.content_type == ContentType::Video)
            .ok_or_else(|| OttError::Protocol { reason: "MPD has no video".into() })?;
        let max_height = if level == SecurityLevel::L1 { u32::MAX } else { L3_MAX_HEIGHT };
        let rep = best_video_rep(video_set, max_height)
            .ok_or_else(|| OttError::Protocol { reason: "no playable resolution".into() })?;
        let resolution = rep.resolution.expect("filtered on resolution");
        // When metadata exposes key ids, request exactly what the
        // selected rendition needs; otherwise send an open request.
        let key_ids = rep
            .default_kid()
            .and_then(|hex| KeyId::from_hex(hex).ok())
            .map(|k| vec![k])
            .unwrap_or_default();
        Ok((resolution, rep.id.clone(), key_ids))
    }

    /// Downloads init+segments for a representation.
    fn fetch_bundle(&self, mpd: &Mpd, rep_id: &str) -> Result<MediaBundle, OttError> {
        let rep = mpd
            .adaptation_sets()
            .flat_map(|s| s.representations.iter())
            .find(|r| r.id == rep_id)
            .ok_or_else(|| OttError::NotFound { what: rep_id.to_owned() })?;
        let init_bytes = self.send(&rep.init_url, &[])?;
        let init = InitSegment::from_bytes(&init_bytes)
            .map_err(|e| OttError::Protocol { reason: format!("bad init segment: {e}") })?;
        let mut segments = Vec::with_capacity(rep.segment_urls.len());
        for url in &rep.segment_urls {
            let seg_bytes = self.send(url, &[])?;
            segments.push(
                MediaSegment::from_bytes(&seg_bytes)
                    .map_err(|e| OttError::Protocol { reason: format!("bad segment: {e}") })?,
            );
        }
        Ok(MediaBundle { init, segments })
    }

    /// Plays (or fetches) the English audio track.
    fn play_audio(&self, mpd: &Mpd, title_id: &str) -> Result<Vec<Vec<u8>>, OttError> {
        let Some(audio_set) = mpd
            .adaptation_sets()
            .find(|s| s.content_type == ContentType::Audio && s.lang.as_deref() == Some("en"))
        else {
            return Ok(Vec::new());
        };
        let rep = audio_set.representations.first().ok_or_else(|| OttError::Protocol {
            reason: "audio set has no representation".into(),
        })?;
        let bundle = self.fetch_bundle(mpd, &rep.id)?;
        if !bundle.init.is_protected() {
            // Clear audio: directly readable, no DRM involved at all.
            let mut samples = Vec::new();
            for seg in &bundle.segments {
                samples.extend(
                    decrypt_segment(&bundle.init, seg, &MemoryKeyStore::new())
                        .map_err(|e| OttError::Protocol { reason: e.to_string() })?,
                );
            }
            return Ok(samples);
        }
        let kid = KeyId(bundle.init.tenc.as_ref().expect("protected init has tenc").default_kid.0);
        let license_path = format!("license/{}/{title_id}", self.profile.slug);
        let token = self.account_token.clone();
        let (frames, _) = play_protected_content(
            self.binder.clone(),
            WIDEVINE_SYSTEM_ID,
            title_id,
            &[kid],
            self.next_nonce(),
            |request| {
                let mut w = TlvWriter::new();
                w.string(1, &token).bytes(2, request);
                self.send(&license_path, &w.finish())
                    .map_err(|e| DrmError::Cdm(CdmError::Rejected { reason: e.to_string() }))
            },
            || Ok(bundle.clone()),
        )?;
        Ok(frames.into_iter().map(|f| f.data).collect())
    }

    /// Fetches the English subtitle track when the MPD lists one.
    fn fetch_subtitles(&self, mpd: &Mpd) -> Result<Option<String>, OttError> {
        let Some(text_set) = mpd
            .adaptation_sets()
            .find(|s| s.content_type == ContentType::Text && s.lang.as_deref() == Some("en"))
        else {
            return Ok(None);
        };
        let Some(url) = text_set.representations.first().and_then(|r| r.segment_urls.first())
        else {
            return Ok(None);
        };
        let bytes = self.send(url, &[])?;
        Ok(Some(String::from_utf8_lossy(&bytes).into_owned()))
    }

    /// Amazon's embedded-DRM path: same protocol, zero platform CDM
    /// involvement.
    fn play_via_embedded(&self, title_id: &str) -> Result<PlaybackOutcome, OttError> {
        let embedded = self.embedded.as_ref().expect("embedded path requires the library");
        let core = &embedded.core;

        // Provision the embedded client if needed (its modern version is
        // never revoked).
        if !core.is_provisioned() {
            let nonce = self.next_nonce();
            let request = core.provisioning_request(nonce)?;
            let raw =
                self.send(&format!("provision/{}", self.profile.slug), &request.to_bytes())?;
            let response = ProvisioningResponse::parse(&raw)?;
            core.install_rsa_key(nonce, &response)?;
        }

        let path = format!("manifest/{}/{title_id}", self.profile.slug);
        let xml = self.send(&path, self.account_token.as_bytes())?;
        let text = String::from_utf8(xml)
            .map_err(|_| OttError::Protocol { reason: "manifest is not UTF-8".into() })?;
        let mpd = Mpd::parse(&text)
            .map_err(|e| OttError::Protocol { reason: format!("bad MPD: {e}") })?;
        // The embedded library is software-only: L3-class regardless of
        // the handset's TEE.
        let (resolution, rep_id, _) = self.select_video_at(&mpd, SecurityLevel::L3)?;

        // License through the embedded core. From here every failure must
        // still close the embedded session, or faulted playbacks leak
        // session slots until the core's cap starves later plays.
        let session = core.open_session(self.next_nonce())?;
        #[allow(clippy::type_complexity)]
        let result: Result<(Vec<Vec<u8>>, Vec<Vec<u8>>, Option<String>), OttError> = (|| {
            let request = core.license_request(session, title_id, &[])?;
            let mut w = TlvWriter::new();
            w.string(1, &self.account_token).bytes(2, &request.to_bytes());
            let raw =
                self.send(&format!("license/{}/{title_id}", self.profile.slug), &w.finish())?;
            let response = LicenseResponse::parse(&raw)?;
            core.load_license(session, &response)?;

            // Decrypt video and audio with the embedded core's loaded keys.
            let decrypt_rep = |core: &CdmCore, rep_id: &str| -> Result<Vec<Vec<u8>>, OttError> {
                let bundle = self.fetch_bundle(&mpd, rep_id)?;
                let mut out = Vec::new();
                for seg in &bundle.segments {
                    let samples =
                        seg.samples().map_err(|e| OttError::Protocol { reason: e.to_string() })?;
                    match &seg.senc {
                        None => out.extend(samples.into_iter().map(<[u8]>::to_vec)),
                        Some(senc) => {
                            let tenc = bundle.init.tenc.as_ref().ok_or_else(|| {
                                OttError::Protocol { reason: "missing tenc".into() }
                            })?;
                            let kid = KeyId(tenc.default_kid.0);
                            for (sample, entry) in samples.iter().zip(&senc.entries) {
                                let iv: [u8; 8] = entry.iv.as_slice().try_into().map_err(|_| {
                                    OttError::Protocol { reason: "bad cenc IV".into() }
                                })?;
                                out.push(core.decrypt_sample(
                                    session,
                                    &kid,
                                    &wideleak_cdm::oemcrypto::SampleCrypto::Cenc { iv },
                                    sample,
                                    &entry.subsamples,
                                )?);
                            }
                        }
                    }
                }
                Ok(out)
            };

            let video_samples = decrypt_rep(core, &rep_id)?;
            let audio_samples = decrypt_rep(core, "audio-en")?;
            let subtitle_text = self.fetch_subtitles(&mpd)?;
            Ok((video_samples, audio_samples, subtitle_text))
        })();

        let (video_samples, audio_samples, subtitle_text) = match result {
            Ok(parts) => {
                core.close_session(session)?;
                parts
            }
            Err(e) => {
                let _ = core.close_session(session);
                return Err(e);
            }
        };

        Ok(PlaybackOutcome {
            used_platform_widevine: false,
            resolution,
            video_samples,
            audio_samples,
            subtitle_text,
            trace: None,
        })
    }
}

/// Picks the best playable representation at or below `max_height`.
///
/// Deterministic total order: height first, then declared bandwidth,
/// then representation id — never MPD iteration order, so equal-height
/// renditions always resolve the same way. Resolution-less
/// representations are filtered out rather than sorting as `None`.
pub(crate) fn best_video_rep(
    video_set: &AdaptationSet,
    max_height: u32,
) -> Option<&Representation> {
    video_set
        .representations
        .iter()
        .filter(|r| r.resolution.is_some_and(|(_, h)| h <= max_height))
        .max_by_key(|r| (r.resolution.map_or(0, |(_, h)| h), r.bandwidth, &r.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(id: &str, bandwidth: u32, resolution: Option<(u32, u32)>) -> Representation {
        let mut r = Representation::new(id, bandwidth);
        r.resolution = resolution;
        r
    }

    fn video_set(reps: Vec<Representation>) -> AdaptationSet {
        AdaptationSet {
            content_type: ContentType::Video,
            lang: None,
            content_protections: vec![],
            representations: reps,
        }
    }

    #[test]
    fn rep_selection_pins_height_then_bandwidth_then_id() {
        // Equal-height reps in adversarial declaration order: the pick
        // must key on (height, bandwidth, id), not iteration order.
        let set = video_set(vec![
            rep("video-720p-b", 1_500_000, Some((1280, 720))),
            rep("video-720p-a", 1_500_000, Some((1280, 720))),
            rep("video-720p-lo", 1_200_000, Some((1280, 720))),
            rep("video-540p", 1_080_000, Some((960, 540))),
            rep("audio-like", u32::MAX, None),
        ]);
        let pick = best_video_rep(&set, u32::MAX).expect("a playable rep");
        assert_eq!(pick.id, "video-720p-b", "highest bandwidth wins, then lexicographic id");

        // Reversing declaration order must not change the outcome.
        let mut reversed = set.clone();
        reversed.representations.reverse();
        assert_eq!(best_video_rep(&reversed, u32::MAX).unwrap().id, "video-720p-b");
    }

    #[test]
    fn rep_selection_respects_height_cap_and_skips_resolution_less() {
        let set = video_set(vec![
            rep("video-1080p", 2_160_000, Some((1920, 1080))),
            rep("video-540p", 1_080_000, Some((960, 540))),
            rep("mystery", 9_999_999, None),
        ]);
        assert_eq!(best_video_rep(&set, 540).unwrap().id, "video-540p");
        assert!(best_video_rep(&set, 100).is_none(), "nothing playable under the cap");
    }

    #[test]
    fn ten_apps_in_table_order() {
        let apps = evaluated_apps();
        assert_eq!(apps.len(), 10);
        assert_eq!(apps[0].name, "Netflix");
        assert_eq!(apps[9].name, "Salto");
        let slugs: std::collections::HashSet<_> = apps.iter().map(|a| a.slug).collect();
        assert_eq!(slugs.len(), 10, "slugs are unique");
    }

    #[test]
    fn ground_truth_matches_table_1() {
        let apps = evaluated_apps();
        let by_slug = |s: &str| apps.iter().find(|a| a.slug == s).unwrap();
        // Audio in clear: Netflix, myCanal, Salto.
        for slug in ["netflix", "mycanal", "salto"] {
            assert_eq!(by_slug(slug).audio, AudioProtection::Clear, "{slug}");
        }
        // Only Amazon follows the recommendation.
        assert_eq!(by_slug("amazon").audio, AudioProtection::DistinctKey);
        // Revocation enforced by Disney+, HBO Max, Starz only.
        let enforcing: Vec<&str> =
            apps.iter().filter(|a| a.enforce_revocation).map(|a| a.slug).collect();
        assert_eq!(enforcing, vec!["disney", "hbomax", "starz"]);
        // Netflix is the only secure-channel app; Amazon the only custom-DRM one.
        assert!(by_slug("netflix").uri_protection);
        assert_eq!(apps.iter().filter(|a| a.uri_protection).count(), 1);
        assert!(by_slug("amazon").custom_drm_on_l3);
        assert_eq!(apps.iter().filter(|a| a.custom_drm_on_l3).count(), 1);
        // Subtitle URIs undiscoverable for Hulu and Starz.
        let hidden_subs: Vec<&str> =
            apps.iter().filter(|a| !a.subtitles_in_mpd).map(|a| a.slug).collect();
        assert_eq!(hidden_subs, vec!["hulu", "starz"]);
        // Regional metadata restrictions: Hulu and HBO Max.
        let hidden_kids: Vec<&str> =
            apps.iter().filter(|a| !a.metadata_kids_visible).map(|a| a.slug).collect();
        assert_eq!(hidden_kids, vec!["hulu", "hbomax"]);
    }

    #[test]
    fn error_codec_round_trip() {
        for e in [
            OttError::Unauthorized,
            OttError::DeviceRevoked { cdm_version: "3.1.0".into() },
            OttError::NotFound { what: "title-x".into() },
        ] {
            assert_eq!(decode_backend_error(&encode_backend_error(&e)), e);
        }
        // Other errors collapse into Protocol.
        let p =
            decode_backend_error(&encode_backend_error(&OttError::Protocol { reason: "x".into() }));
        assert!(matches!(p, OttError::Protocol { .. }));
    }

    #[test]
    fn profile_conversions() {
        let netflix = &evaluated_apps()[0];
        let cdn = netflix.cdn_config();
        assert!(cdn.uri_protection);
        assert_eq!(cdn.audio, AudioProtection::Clear);
        let lic = netflix.license_policy();
        assert!(lic.uri_channel);
        assert!(!lic.enforce_revocation);
    }
}
