//! Seeded, deterministic bandwidth model for the CDN plane.
//!
//! Real OTT clients stream under bandwidth pressure; this module gives
//! every simulated client a private token-bucket link whose capacity
//! follows a scheduled step function, so segment fetches take simulated
//! transfer time and can stall. Everything is integer math over a
//! per-client *local* timeline: a link's behaviour is a pure function of
//! `(seed, client index, schedule)` regardless of thread interleaving,
//! which is what keeps the `wideleak adapt` study byte-identical per
//! seed. Wall-clock elapsed time is mirrored onto the shared
//! [`wideleak_faults::VirtualClock`] by the playback path, so license
//! expiry and fault schedules see adaptation time pass.

use wideleak_faults::det_hash;

/// Seed salt for deriving per-client rate multipliers.
const LINK_SALT: u64 = 0xBA2D_0001;

/// Floor rate applied when the schedule tail declares zero capacity:
/// the link crawls instead of stalling forever, so every transfer
/// terminates deterministically.
const TAIL_FLOOR_BPS: u64 = 1_000;

/// A capacity step function: ordered `(from_ms, capacity_bps)` pairs on
/// the client's local timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandwidthSchedule {
    /// Steps sorted by start time; the first step always starts at 0.
    steps: Vec<(u64, u64)>,
}

impl BandwidthSchedule {
    /// A constant-capacity schedule.
    #[must_use]
    pub fn flat(capacity_bps: u64) -> Self {
        BandwidthSchedule { steps: vec![(0, capacity_bps)] }
    }

    /// Builds a schedule from `(from_ms, capacity_bps)` steps.
    ///
    /// Steps are sorted by start time; a step at 0 is synthesised from
    /// the earliest capacity when missing so the link is never
    /// undefined.
    #[must_use]
    pub fn steps(mut steps: Vec<(u64, u64)>) -> Self {
        if steps.is_empty() {
            return Self::flat(0);
        }
        steps.sort_unstable();
        if steps[0].0 != 0 {
            let first_capacity = steps[0].1;
            steps.insert(0, (0, first_capacity));
        }
        BandwidthSchedule { steps }
    }

    /// Declared capacity in bits/second at a local timestamp.
    #[must_use]
    pub fn capacity_at(&self, local_ms: u64) -> u64 {
        self.steps.iter().rev().find(|&&(from, _)| from <= local_ms).map_or(0, |&(_, bps)| bps)
    }

    /// Start of the next capacity step strictly after `local_ms`.
    #[must_use]
    pub fn next_step_after(&self, local_ms: u64) -> Option<u64> {
        self.steps.iter().map(|&(from, _)| from).find(|&from| from > local_ms)
    }

    /// The lowest scheduled capacity (useful for sizing expectations).
    #[must_use]
    pub fn min_capacity(&self) -> u64 {
        self.steps.iter().map(|&(_, bps)| bps).min().unwrap_or(0)
    }
}

/// Fleet-level bandwidth configuration: one schedule shared by every
/// client, individualised by a seeded per-client rate multiplier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandwidthConfig {
    /// The capacity step function every client's link follows.
    pub schedule: BandwidthSchedule,
    /// Token-bucket burst allowance in bits (instantly served on a
    /// fresh or idle link).
    pub burst_bits: u64,
    /// Half-width of the per-client rate spread in permille: each
    /// client's capacity is scaled by a seeded multiplier drawn from
    /// `1000 ± spread`.
    pub spread_permille: u64,
}

impl BandwidthConfig {
    /// An effectively unconstrained link (10 Gbps, no spread): adaptive
    /// playbacks complete in ~0 simulated time, matching the
    /// unconditional CDN the non-adaptive paths see.
    #[must_use]
    pub fn unconstrained() -> Self {
        BandwidthConfig {
            schedule: BandwidthSchedule::flat(10_000_000_000),
            burst_bits: 0,
            spread_permille: 0,
        }
    }

    /// A flat-capacity config with a default burst and ±10% spread.
    #[must_use]
    pub fn flat(capacity_bps: u64) -> Self {
        BandwidthConfig {
            schedule: BandwidthSchedule::flat(capacity_bps),
            burst_bits: 2_000_000,
            spread_permille: 100,
        }
    }

    /// Mints the deterministic link for one client of the fleet.
    #[must_use]
    pub fn link(&self, seed: u64, client_idx: u64) -> ClientLink {
        let spread = self.spread_permille.min(999);
        let rate_permille = if spread == 0 {
            1000
        } else {
            1000 - spread + det_hash(seed ^ LINK_SALT, client_idx) % (2 * spread + 1)
        };
        ClientLink {
            schedule: self.schedule.clone(),
            rate_permille,
            burst_bits: self.burst_bits,
            tokens_bits: self.burst_bits,
            local_now_ms: 0,
        }
    }
}

/// Outcome of one simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Transfer {
    /// Total simulated transfer time in milliseconds.
    pub elapsed_ms: u64,
    /// Portion of `elapsed_ms` spent stalled on a zero-capacity step.
    pub stalled_ms: u64,
}

/// One client's private bandwidth link: a token bucket over a scheduled
/// capacity step function, advanced on its own local timeline.
#[derive(Debug, Clone)]
pub struct ClientLink {
    schedule: BandwidthSchedule,
    /// Seeded per-client capacity multiplier in permille.
    rate_permille: u64,
    burst_bits: u64,
    tokens_bits: u64,
    local_now_ms: u64,
}

impl ClientLink {
    /// The link's local timestamp in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.local_now_ms
    }

    /// This client's capacity in bits/second at its current local time.
    #[must_use]
    pub fn current_capacity_bps(&self) -> u64 {
        self.scaled_capacity_at(self.local_now_ms)
    }

    fn scaled_capacity_at(&self, local_ms: u64) -> u64 {
        let base = u128::from(self.schedule.capacity_at(local_ms));
        u64::try_from(base * u128::from(self.rate_permille) / 1000).unwrap_or(u64::MAX)
    }

    /// Simulates transferring `bits` over the link, consuming burst
    /// tokens first and then integrating scheduled capacity step by
    /// step. Advances the local timeline by the returned elapsed time.
    pub fn transfer(&mut self, bits: u64) -> Transfer {
        let served_from_burst = self.tokens_bits.min(bits);
        self.tokens_bits -= served_from_burst;
        let mut remaining = u128::from(bits - served_from_burst);
        let mut out = Transfer::default();
        while remaining > 0 {
            let rate = self.scaled_capacity_at(self.local_now_ms);
            let boundary = self.schedule.next_step_after(self.local_now_ms);
            if rate == 0 {
                match boundary {
                    // Stalled: nothing moves until the next step.
                    Some(next) => {
                        let wait = next - self.local_now_ms;
                        self.local_now_ms = next;
                        out.elapsed_ms += wait;
                        out.stalled_ms += wait;
                        continue;
                    }
                    // Dead tail: crawl at the floor rate so the
                    // transfer still terminates.
                    None => {
                        let ms = (remaining * 1000).div_ceil(u128::from(TAIL_FLOOR_BPS));
                        let ms = u64::try_from(ms).unwrap_or(u64::MAX);
                        self.local_now_ms = self.local_now_ms.saturating_add(ms);
                        out.elapsed_ms = out.elapsed_ms.saturating_add(ms);
                        out.stalled_ms = out.stalled_ms.saturating_add(ms);
                        return out;
                    }
                }
            }
            let need_ms = (remaining * 1000).div_ceil(u128::from(rate));
            let window_ms = boundary.map(|next| u128::from(next - self.local_now_ms));
            match window_ms {
                Some(window) if need_ms > window => {
                    // Serve what this step allows, then cross into the
                    // next step. The window may serve zero whole bits at
                    // very low rates; time still advances, so the loop
                    // always reaches the next boundary.
                    let served = u128::from(rate) * window / 1000;
                    remaining -= served.min(remaining);
                    let window = u64::try_from(window).unwrap_or(u64::MAX);
                    self.local_now_ms = self.local_now_ms.saturating_add(window);
                    out.elapsed_ms = out.elapsed_ms.saturating_add(window);
                }
                _ => {
                    let ms = u64::try_from(need_ms).unwrap_or(u64::MAX);
                    self.local_now_ms = self.local_now_ms.saturating_add(ms);
                    out.elapsed_ms = out.elapsed_ms.saturating_add(ms);
                    remaining = 0;
                }
            }
        }
        out
    }

    /// Advances the local timeline without transferring: the buffer is
    /// draining, and burst tokens accrue at the current capacity up to
    /// the configured burst.
    pub fn idle(&mut self, ms: u64) {
        let earned = u128::from(self.scaled_capacity_at(self.local_now_ms)) * u128::from(ms) / 1000;
        let earned = u64::try_from(earned).unwrap_or(u64::MAX);
        self.tokens_bits = self.tokens_bits.saturating_add(earned).min(self.burst_bits);
        self.local_now_ms = self.local_now_ms.saturating_add(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_link_serves_at_declared_rate() {
        // 1 Mbps, no burst, no spread: 1_000_000 bits take 1000 ms.
        let config = BandwidthConfig {
            schedule: BandwidthSchedule::flat(1_000_000),
            burst_bits: 0,
            spread_permille: 0,
        };
        let mut link = config.link(7, 0);
        let t = link.transfer(1_000_000);
        assert_eq!(t, Transfer { elapsed_ms: 1000, stalled_ms: 0 });
        assert_eq!(link.now_ms(), 1000);
    }

    #[test]
    fn burst_tokens_serve_instantly_and_refill_on_idle() {
        let config = BandwidthConfig {
            schedule: BandwidthSchedule::flat(1_000_000),
            burst_bits: 500_000,
            spread_permille: 0,
        };
        let mut link = config.link(7, 0);
        assert_eq!(link.transfer(500_000).elapsed_ms, 0, "fully served from burst");
        assert_eq!(link.transfer(1_000_000).elapsed_ms, 1000, "bucket now empty");
        link.idle(250);
        assert_eq!(link.transfer(250_000).elapsed_ms, 0, "idle refilled 250k bits");
    }

    #[test]
    fn capacity_steps_integrate_across_boundaries() {
        // 2 Mbps for 1 s, then 500 kbps: 3M bits = 2M in the first
        // second + 1M at 500 kbps = 1000 + 2000 ms.
        let config = BandwidthConfig {
            schedule: BandwidthSchedule::steps(vec![(0, 2_000_000), (1000, 500_000)]),
            burst_bits: 0,
            spread_permille: 0,
        };
        let mut link = config.link(7, 0);
        assert_eq!(link.transfer(3_000_000).elapsed_ms, 3000);
    }

    #[test]
    fn zero_capacity_step_stalls_until_recovery() {
        let config = BandwidthConfig {
            schedule: BandwidthSchedule::steps(vec![(0, 0), (2000, 1_000_000)]),
            burst_bits: 0,
            spread_permille: 0,
        };
        let mut link = config.link(7, 0);
        let t = link.transfer(1_000_000);
        assert_eq!(t.stalled_ms, 2000, "waited out the outage");
        assert_eq!(t.elapsed_ms, 3000);
    }

    #[test]
    fn dead_tail_crawls_but_terminates() {
        let config = BandwidthConfig {
            schedule: BandwidthSchedule::flat(0),
            burst_bits: 0,
            spread_permille: 0,
        };
        let mut link = config.link(7, 0);
        let t = link.transfer(10_000);
        assert_eq!(t.elapsed_ms, 10_000, "10k bits at the 1 kbps floor");
        assert_eq!(t.stalled_ms, t.elapsed_ms);
    }

    #[test]
    fn links_are_pure_functions_of_seed_and_index() {
        let config = BandwidthConfig::flat(1_500_000);
        let mut a = config.link(42, 3);
        let mut b = config.link(42, 3);
        for bits in [100_000u64, 2_000_000, 50_000, 900_000] {
            assert_eq!(a.transfer(bits), b.transfer(bits));
        }
        // A different client index gets a different (but deterministic)
        // multiplier with the default ±10% spread.
        let c = config.link(42, 4);
        assert!(c.rate_permille >= 900 && c.rate_permille <= 1100);
    }

    #[test]
    fn schedule_normalisation() {
        let s = BandwidthSchedule::steps(vec![(5000, 200), (1000, 700)]);
        assert_eq!(s.capacity_at(0), 700, "a step at 0 is synthesised");
        assert_eq!(s.capacity_at(1500), 700);
        assert_eq!(s.capacity_at(5000), 200);
        assert_eq!(s.next_step_after(0), Some(1000));
        assert_eq!(s.next_step_after(5000), None);
        assert_eq!(s.min_capacity(), 200);
    }
}
