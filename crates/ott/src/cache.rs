//! Hot-path caches for the backend servers.
//!
//! Three paths dominate a fleet's steady-state load: provisioning
//! (RSA key derivation + wrapping), license issuance (policy resolution +
//! key wrapping) and sample decryption (inside the CDM; see
//! `wideleak_cdm::session::DecryptCache`). This module hosts the two
//! server-side caches plus the [`CacheConfig`] switchboard the ecosystem
//! threads through all three.
//!
//! Every cache is a pure accelerator: with caching disabled (the
//! default), every byte the servers emit is identical to the uncached
//! implementation, and with caching *enabled* responses are still
//! byte-identical because only nonce-independent intermediates are
//! cached — nonce-derived IVs, ciphertexts and signatures are recomputed
//! per request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use wideleak_cdm::messages::KeyControl;
use wideleak_faults::VirtualClock;

/// Which caches an ecosystem runs with. The default is everything off —
/// the study's published tables are produced without any cache in the
/// loop, and the caches must never change those bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Provisioning-certificate cache (keyed by device identity).
    pub provisioning_cert: bool,
    /// License-response cache (keyed by device + content + policy).
    pub license_response: bool,
    /// Per-session derived-key / keystream cache in the CDM decrypt path.
    pub decrypt_keys: bool,
}

impl CacheConfig {
    /// Every cache on — the load generator's warm configuration.
    #[must_use]
    pub fn all() -> Self {
        CacheConfig { provisioning_cert: true, license_response: true, decrypt_keys: true }
    }

    /// Every cache off (same as [`Default`]).
    #[must_use]
    pub fn none() -> Self {
        CacheConfig::default()
    }

    /// Whether any cache is enabled.
    #[must_use]
    pub fn any(&self) -> bool {
        self.provisioning_cert || self.license_response || self.decrypt_keys
    }
}

/// Hit/miss counters of one cache, snapshot form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the full path.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in permille (integral, so reports stay byte-stable).
    #[must_use]
    pub fn hit_permille(&self) -> u64 {
        match self.lookups() {
            0 => 0,
            n => self.hits * 1000 / n,
        }
    }
}

/// The nonce-independent provisioning material for one device identity.
///
/// Everything here is a function of `(device_key, device_id, RSA key)`
/// alone: the derived wrap/MAC keys and the serialized private-key blob.
/// What is *not* here — IV, ciphertext, signature — depends on the
/// request nonce and is recomputed per response.
#[derive(Clone)]
pub struct ProvisionCertEntry {
    /// The device key the entry was derived from. Doubles as a staleness
    /// check: a keybox rotation changes the device key, and a lookup
    /// presenting a different key is treated as a miss even if the
    /// explicit invalidation was missed.
    pub device_key: [u8; 16],
    /// Keybox-derived AES wrap key.
    pub enc_key: [u8; 16],
    /// Keybox-derived HMAC key.
    pub mac_key: [u8; 32],
    /// Serialized Device RSA Key (TLV of `n`, `e`, `d`, `p`, `q`).
    pub blob: Vec<u8>,
    /// The public half, re-recorded with the trust authority on each hit.
    pub public_key: wideleak_crypto::rsa::RsaPublicKey,
}

impl std::fmt::Debug for ProvisionCertEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProvisionCertEntry(blob: {} bytes)", self.blob.len())
    }
}

/// Provisioning-certificate cache, keyed by device identity (the keybox
/// device id). Invalidated per device on keybox rotation.
#[derive(Default)]
pub struct ProvisionCertCache {
    entries: Mutex<HashMap<Vec<u8>, ProvisionCertEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ProvisionCertCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProvisionCertCache(entries: {})", self.entries.lock().len())
    }
}

impl ProvisionCertCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ProvisionCertCache::default()
    }

    /// Looks a device identity up, counting the outcome. The caller's
    /// current `device_key` is cross-checked so an entry that survived a
    /// keybox rotation (missed invalidation) can never serve stale wrap
    /// keys.
    pub fn lookup(&self, device_id: &[u8], device_key: &[u8; 16]) -> Option<ProvisionCertEntry> {
        let entries = self.entries.lock();
        match entries.get(device_id) {
            Some(entry) if entry.device_key == *device_key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if wideleak_telemetry::is_enabled() {
                    wideleak_telemetry::incr("ott.provision.cache.hits");
                }
                Some(entry.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if wideleak_telemetry::is_enabled() {
                    wideleak_telemetry::incr("ott.provision.cache.misses");
                }
                None
            }
        }
    }

    /// Stores the derived material for a device identity.
    pub fn store(&self, device_id: Vec<u8>, entry: ProvisionCertEntry) {
        self.entries.lock().insert(device_id, entry);
    }

    /// Drops a device's entry (keybox rotation).
    pub fn invalidate(&self, device_id: &[u8]) {
        self.entries.lock().remove(device_id);
    }

    /// Number of cached identities.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Cache key of one resolved license plan. Everything that feeds policy
/// resolution participates; the nonce deliberately does not (it only
/// feeds the response RNG, which is recomputed per request).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LicensePlanKey {
    /// Requesting device identity.
    pub device_id: Vec<u8>,
    /// App slug.
    pub app: String,
    /// Title id.
    pub title: String,
    /// `AudioProtection` discriminant of the app policy.
    pub audio: u8,
    /// Whether the app enforces revocation.
    pub enforce_revocation: bool,
    /// Whether the app licenses the URI channel.
    pub uri_channel: bool,
    /// Effective (post-attestation-clamp) security level discriminant.
    pub effective_level: u8,
    /// Requested key ids, sorted (an empty list means "everything").
    pub key_ids: Vec<[u8; 16]>,
}

/// One emitted key of a cached license plan.
#[derive(Debug, Clone)]
pub struct LicensePlanEntry {
    /// Key id.
    pub kid: [u8; 16],
    /// The plaintext content key (the cache lives inside the server's
    /// trust boundary, exactly like the label-derivation oracle it
    /// replaces).
    pub content_key: [u8; 16],
    /// Usage restrictions to attach.
    pub control: KeyControl,
}

struct LicensePlan {
    entries: Vec<LicensePlanEntry>,
    inserted_at_ms: u64,
}

/// License-response cache: maps a [`LicensePlanKey`] to the resolved key
/// plan. Entries live for the license duration on the shared virtual
/// clock — a plan older than the license it produced is recomputed, so
/// caching can never stretch `KeyExpired` semantics.
pub struct LicenseResponseCache {
    plans: Mutex<HashMap<LicensePlanKey, LicensePlan>>,
    clock: std::sync::Arc<VirtualClock>,
    ttl_ms: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for LicenseResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LicenseResponseCache(plans: {}, ttl: {}ms)",
            self.plans.lock().len(),
            self.ttl_ms
        )
    }
}

impl LicenseResponseCache {
    /// Creates a cache whose entries expire after `ttl_ms` of virtual
    /// time.
    #[must_use]
    pub fn new(clock: std::sync::Arc<VirtualClock>, ttl_ms: u64) -> Self {
        LicenseResponseCache {
            plans: Mutex::new(HashMap::new()),
            clock,
            ttl_ms,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks a plan up, evicting it first when its TTL lapsed.
    pub fn lookup(&self, key: &LicensePlanKey) -> Option<Vec<LicensePlanEntry>> {
        let now = self.clock.now_ms();
        let mut plans = self.plans.lock();
        if let Some(plan) = plans.get(key) {
            if now.saturating_sub(plan.inserted_at_ms) < self.ttl_ms {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if wideleak_telemetry::is_enabled() {
                    wideleak_telemetry::incr("ott.license.cache.hits");
                }
                return Some(plan.entries.clone());
            }
            plans.remove(key);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if wideleak_telemetry::is_enabled() {
            wideleak_telemetry::incr("ott.license.cache.misses");
        }
        None
    }

    /// Stores a freshly resolved plan.
    pub fn store(&self, key: LicensePlanKey, entries: Vec<LicensePlanEntry>) {
        let inserted_at_ms = self.clock.now_ms();
        self.plans.lock().insert(key, LicensePlan { entries, inserted_at_ms });
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.lock().is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn plan_key(device: &[u8], title: &str) -> LicensePlanKey {
        LicensePlanKey {
            device_id: device.to_vec(),
            app: "netflix".into(),
            title: title.into(),
            audio: 0,
            enforce_revocation: false,
            uri_channel: true,
            effective_level: 2,
            key_ids: vec![[0xAA; 16]],
        }
    }

    #[test]
    fn config_default_is_everything_off() {
        assert!(!CacheConfig::default().any());
        assert!(CacheConfig::all().any());
        assert_eq!(CacheConfig::none(), CacheConfig::default());
    }

    #[test]
    fn cert_cache_hits_and_key_rotation_staleness() {
        let cache = ProvisionCertCache::new();
        let entry = ProvisionCertEntry {
            device_key: [1; 16],
            enc_key: [2; 16],
            mac_key: [3; 32],
            blob: vec![4; 64],
            public_key: wideleak_crypto::rsa::RsaPublicKey::new(
                wideleak_bigint::BigUint::from_u64(3233),
                wideleak_bigint::BigUint::from_u64(17),
            ),
        };
        assert!(cache.lookup(b"dev", &[1; 16]).is_none());
        cache.store(b"dev".to_vec(), entry);
        assert!(cache.lookup(b"dev", &[1; 16]).is_some());
        // Rotated keybox (different device key): stale entry is not served.
        assert!(cache.lookup(b"dev", &[9; 16]).is_none());
        cache.invalidate(b"dev");
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(cache.stats().hit_permille(), 333);
    }

    #[test]
    fn license_cache_ttl_expires_on_the_virtual_clock() {
        let clock = Arc::new(VirtualClock::new());
        let cache = LicenseResponseCache::new(clock.clone(), 1_000);
        let key = plan_key(b"dev", "title-001");
        assert!(cache.lookup(&key).is_none());
        cache.store(
            key.clone(),
            vec![LicensePlanEntry {
                kid: [0xAA; 16],
                content_key: [0xBB; 16],
                control: KeyControl {
                    max_resolution_height: 540,
                    min_security_level: wideleak_device::catalog::SecurityLevel::L3,
                    duration_seconds: 1,
                },
            }],
        );
        assert_eq!(cache.lookup(&key).unwrap().len(), 1);
        clock.advance_ms(999);
        assert!(cache.lookup(&key).is_some(), "just inside the TTL");
        clock.advance_ms(1);
        assert!(cache.lookup(&key).is_none(), "TTL lapsed: recompute");
        assert_eq!(cache.len(), 0, "expired plan evicted");
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn distinct_plan_keys_do_not_collide() {
        let clock = Arc::new(VirtualClock::new());
        let cache = LicenseResponseCache::new(clock, u64::MAX);
        cache.store(plan_key(b"dev-a", "title-001"), Vec::new());
        assert!(cache.lookup(&plan_key(b"dev-b", "title-001")).is_none());
        assert!(cache.lookup(&plan_key(b"dev-a", "title-002")).is_none());
        assert!(cache.lookup(&plan_key(b"dev-a", "title-001")).is_some());
    }
}
