//! The content delivery network: MPDs and media assets over pinned TLS.
//!
//! Serving behaviour encodes three app-level choices the monitor probes:
//!
//! - **asset protection** — video is always CENC-encrypted, subtitles are
//!   always clear, audio follows the app's [`AudioProtection`] policy;
//! - **metadata visibility** — apps under regional restriction (Hulu,
//!   HBO Max) serve MPDs without `default_KID` attributes, which is what
//!   blocks the paper's Q3 analysis for them;
//! - **URI protection** — Netflix serves its manifest through the
//!   non-DASH Widevine secure channel (AES-CBC under a licensed URI key)
//!   instead of plaintext-over-TLS.
//!
//! Media segment fetches are unauthenticated (as in production CDNs,
//! where possession of the URL is the only gate) — the property that
//! makes clear audio playable without any OTT account.

use std::collections::HashMap;

use parking_lot::Mutex;
use wideleak_cenc::keys::ContentKey;
use wideleak_crypto::aes::Aes128;
use wideleak_crypto::modes::cbc_encrypt_padded;
use wideleak_dash::mpd::{
    AdaptationSet, ContentProtection, ContentType, Mpd, Period, Representation,
};

use crate::accounts::AccountRegistry;
use crate::content::{
    key_from_label, kid_from_label, package_track, synth_subtitles, track_key_label,
    AudioProtection, Title, TrackSelector, AUDIO_LANGS, RESOLUTIONS, SEGMENTS_PER_REP,
    SUBTITLE_LANGS,
};
use crate::license::uri_channel_label;
use crate::OttError;

/// Per-app CDN behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdnAppConfig {
    /// App identifier (lowercase slug).
    pub app: String,
    /// Audio protection policy.
    pub audio: AudioProtection,
    /// Whether subtitle tracks appear in the MPD (Hulu and Starz deliver
    /// them through a separate, undiscovered API).
    pub subtitles_in_mpd: bool,
    /// Whether `default_KID` metadata is present (regional restrictions
    /// hide it for Hulu and HBO Max).
    pub metadata_kids_visible: bool,
    /// Whether the manifest travels through the non-DASH secure channel.
    pub uri_protection: bool,
}

/// The constant IV the Netflix-style URI channel uses (the channel's
/// security rests on the licensed key, not the IV).
pub const URI_CHANNEL_IV: [u8; 16] = [0x57; 16];

/// The CDN server.
pub struct CdnServer {
    accounts: std::sync::Arc<AccountRegistry>,
    apps: HashMap<String, CdnAppConfig>,
    titles: Vec<Title>,
    /// Lazily packaged asset store: path → bytes.
    store: Mutex<HashMap<String, Vec<u8>>>,
}

impl std::fmt::Debug for CdnServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CdnServer(apps: {}, titles: {})", self.apps.len(), self.titles.len())
    }
}

impl CdnServer {
    /// Creates a CDN for a set of apps and titles.
    pub fn new(
        accounts: std::sync::Arc<AccountRegistry>,
        apps: Vec<CdnAppConfig>,
        titles: Vec<Title>,
    ) -> Self {
        CdnServer {
            accounts,
            apps: apps.into_iter().map(|c| (c.app.clone(), c)).collect(),
            titles,
            store: Mutex::new(HashMap::new()),
        }
    }

    fn app(&self, app: &str) -> Result<&CdnAppConfig, OttError> {
        self.apps.get(app).ok_or_else(|| OttError::NotFound { what: format!("app {app}") })
    }

    fn title(&self, title_id: &str) -> Result<&Title, OttError> {
        self.titles
            .iter()
            .find(|t| t.id == title_id)
            .ok_or_else(|| OttError::NotFound { what: format!("title {title_id}") })
    }

    /// All track selectors packaged for one title.
    fn selectors(config: &CdnAppConfig) -> Vec<TrackSelector> {
        let mut out: Vec<TrackSelector> =
            RESOLUTIONS.iter().map(|&(_, h)| TrackSelector::Video { height: h }).collect();
        out.extend(AUDIO_LANGS.iter().map(|&l| TrackSelector::Audio { lang: l.to_owned() }));
        let _ = config;
        out
    }

    /// Builds the MPD for `(app, title)`.
    pub fn build_mpd(&self, app: &str, title_id: &str) -> Result<Mpd, OttError> {
        let config = self.app(app)?;
        let title = self.title(title_id)?;

        let mut video_set = AdaptationSet {
            content_type: ContentType::Video,
            lang: None,
            content_protections: vec![],
            representations: vec![],
        };
        for &(w, h) in &RESOLUTIONS {
            let selector = TrackSelector::Video { height: h };
            let mut rep = Representation::new(selector.rep_id(), h * 2000);
            rep.resolution = Some((w, h));
            rep.init_url = format!("asset/{app}/{title_id}/{}/init", selector.rep_id());
            rep.segment_urls = (1..=SEGMENTS_PER_REP)
                .map(|s| format!("asset/{app}/{title_id}/{}/seg/{s}", selector.rep_id()))
                .collect();
            let mut protections = vec![ContentProtection::widevine()];
            if config.metadata_kids_visible {
                let label = track_key_label(app, title_id, &selector, config.audio)
                    .expect("video is always keyed");
                protections.insert(
                    0,
                    ContentProtection::mp4_protection("cenc", &kid_from_label(&label).to_string()),
                );
            }
            rep.content_protections = protections;
            video_set.representations.push(rep);
        }

        let mut sets = vec![video_set];
        for &lang in &AUDIO_LANGS {
            let selector = TrackSelector::Audio { lang: lang.to_owned() };
            let mut rep = Representation::new(selector.rep_id(), 128_000);
            rep.init_url = format!("asset/{app}/{title_id}/{}/init", selector.rep_id());
            rep.segment_urls = (1..=SEGMENTS_PER_REP)
                .map(|s| format!("asset/{app}/{title_id}/{}/seg/{s}", selector.rep_id()))
                .collect();
            let mut protections = Vec::new();
            if let Some(label) = track_key_label(app, title_id, &selector, config.audio) {
                protections.push(ContentProtection::widevine());
                if config.metadata_kids_visible {
                    protections.insert(
                        0,
                        ContentProtection::mp4_protection(
                            "cenc",
                            &kid_from_label(&label).to_string(),
                        ),
                    );
                }
            }
            sets.push(AdaptationSet {
                content_type: ContentType::Audio,
                lang: Some(lang.to_owned()),
                content_protections: protections,
                representations: vec![rep],
            });
        }
        if config.subtitles_in_mpd {
            for &lang in &SUBTITLE_LANGS {
                let mut rep = Representation::new(format!("sub-{lang}"), 1_000);
                rep.init_url = String::new();
                rep.segment_urls = vec![format!("asset/{app}/{title_id}/sub/{lang}")];
                sets.push(AdaptationSet {
                    content_type: ContentType::Text,
                    lang: Some(lang.to_owned()),
                    content_protections: vec![],
                    representations: vec![rep],
                });
            }
        }

        Ok(Mpd { title: title.name.clone(), periods: vec![Period { adaptation_sets: sets }] })
    }

    /// Serves the manifest: plaintext XML normally, or wrapped in the
    /// URI secure channel for apps that protect links.
    ///
    /// # Errors
    ///
    /// Returns [`OttError::Unauthorized`] for invalid tokens.
    pub fn fetch_manifest(
        &self,
        app: &str,
        title_id: &str,
        account_token: &str,
    ) -> Result<Vec<u8>, OttError> {
        if !self.accounts.is_valid(account_token) {
            return Err(OttError::Unauthorized);
        }
        let config = self.app(app)?;
        let xml = self.build_mpd(app, title_id)?.to_xml_string().into_bytes();
        if !config.uri_protection {
            return Ok(xml);
        }
        // Netflix-style: AES-CBC under the licensed URI-channel key. The
        // app decrypts it through MediaCrypto::generic_decrypt.
        let ContentKey(key) = key_from_label(&uri_channel_label(app, title_id));
        Ok(cbc_encrypt_padded(&Aes128::new(&key), &URI_CHANNEL_IV, &xml))
    }

    /// Serves an asset byte range by path (`asset/...`). No account check:
    /// CDN URLs are bearer capabilities.
    ///
    /// # Errors
    ///
    /// Returns [`OttError::NotFound`] for unknown paths.
    pub fn fetch_asset(&self, path: &str) -> Result<Vec<u8>, OttError> {
        if let Some(bytes) = self.store.lock().get(path) {
            return Ok(bytes.clone());
        }
        let bytes = self.package_path(path)?;
        self.store.lock().insert(path.to_owned(), bytes.clone());
        Ok(bytes)
    }

    /// Packages the asset behind a path on first access.
    fn package_path(&self, path: &str) -> Result<Vec<u8>, OttError> {
        let not_found = || OttError::NotFound { what: path.to_owned() };
        let parts: Vec<&str> = path.split('/').collect();
        // asset/{app}/{title}/{rep}/init | asset/{app}/{title}/{rep}/seg/{n}
        // | asset/{app}/{title}/sub/{lang}
        if parts.len() < 5 || parts[0] != "asset" {
            return Err(not_found());
        }
        let (app, title_id) = (parts[1], parts[2]);
        let config = self.app(app)?;
        self.title(title_id)?;

        if parts[3] == "sub" {
            return Ok(synth_subtitles(app, title_id, parts[4]));
        }

        let selector = Self::selectors(config)
            .into_iter()
            .find(|s| s.rep_id() == parts[3])
            .ok_or_else(not_found)?;
        let rep = package_track(app, title_id, &selector, config.audio);
        match (parts[4], parts.get(5)) {
            ("init", None) => Ok(rep.init),
            ("seg", Some(n)) => {
                let idx: usize = n.parse().map_err(|_| not_found())?;
                rep.segments.get(idx - 1).cloned().ok_or_else(not_found)
            }
            _ => Err(not_found()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::demo_catalog;
    use std::sync::Arc;
    use wideleak_bmff::fragment::InitSegment;
    use wideleak_crypto::modes::cbc_decrypt_padded;

    fn cdn() -> (Arc<AccountRegistry>, CdnServer) {
        let accounts = Arc::new(AccountRegistry::new());
        let apps = vec![
            CdnAppConfig {
                app: "netflix".into(),
                audio: AudioProtection::Clear,
                subtitles_in_mpd: true,
                metadata_kids_visible: true,
                uri_protection: true,
            },
            CdnAppConfig {
                app: "hulu".into(),
                audio: AudioProtection::SharedKeyWithVideo,
                subtitles_in_mpd: false,
                metadata_kids_visible: false,
                uri_protection: false,
            },
            CdnAppConfig {
                app: "amazon".into(),
                audio: AudioProtection::DistinctKey,
                subtitles_in_mpd: true,
                metadata_kids_visible: true,
                uri_protection: false,
            },
        ];
        (accounts.clone(), CdnServer::new(accounts, apps, demo_catalog()))
    }

    #[test]
    fn mpd_structure_follows_policy() {
        let (_, cdn) = cdn();
        let mpd = cdn.build_mpd("amazon", "title-001").unwrap();
        let sets: Vec<_> = mpd.adaptation_sets().collect();
        // 1 video + 2 audio + 2 subtitle sets.
        assert_eq!(sets.len(), 5);
        assert_eq!(sets[0].representations.len(), 3, "three video resolutions");
        assert!(sets[0].is_protected());
        assert!(sets[1].is_protected(), "amazon audio is keyed");
        assert!(!sets[3].is_protected(), "subtitles never protected");
        // Distinct keys: 3 video + 1 audio.
        assert_eq!(mpd.all_key_ids().len(), 4);
    }

    #[test]
    fn clear_audio_has_no_protection_descriptor() {
        let (_, cdn) = cdn();
        let mpd = cdn.build_mpd("netflix", "title-001").unwrap();
        let audio = mpd.adaptation_sets().find(|s| s.content_type == ContentType::Audio).unwrap();
        assert!(!audio.is_protected());
        // Netflix minimal practice: only the 3 per-resolution video keys.
        assert_eq!(mpd.all_key_ids().len(), 3);
    }

    #[test]
    fn regional_restriction_hides_kids_but_not_protection() {
        let (_, cdn) = cdn();
        let mpd = cdn.build_mpd("hulu", "title-001").unwrap();
        assert!(mpd.all_key_ids().is_empty(), "no default_KID metadata");
        let video = mpd.adaptation_sets().next().unwrap();
        assert!(video.is_protected(), "widevine descriptor still present");
        // Subtitles absent from the manifest entirely.
        assert!(mpd.adaptation_sets().all(|s| s.content_type != ContentType::Text));
    }

    #[test]
    fn manifest_requires_account() {
        let (accounts, cdn) = cdn();
        assert_eq!(
            cdn.fetch_manifest("hulu", "title-001", "token:hulu:nobody"),
            Err(OttError::Unauthorized)
        );
        let token = accounts.subscribe("hulu", "alice");
        let xml = cdn.fetch_manifest("hulu", "title-001", &token).unwrap();
        assert!(String::from_utf8(xml).unwrap().contains("<MPD"));
    }

    #[test]
    fn netflix_manifest_is_ciphertext() {
        let (accounts, cdn) = cdn();
        let token = accounts.subscribe("netflix", "alice");
        let blob = cdn.fetch_manifest("netflix", "title-001", &token).unwrap();
        assert!(String::from_utf8_lossy(&blob).find("<MPD").is_none(), "not plaintext");
        // The URI-channel key decrypts it.
        let ContentKey(key) = key_from_label(&uri_channel_label("netflix", "title-001"));
        let xml = cbc_decrypt_padded(&Aes128::new(&key), &URI_CHANNEL_IV, &blob).unwrap();
        assert!(String::from_utf8(xml).unwrap().contains("<MPD"));
    }

    #[test]
    fn assets_served_without_auth() {
        let (_, cdn) = cdn();
        let init = cdn.fetch_asset("asset/netflix/title-001/audio-en/init").unwrap();
        let parsed = InitSegment::from_bytes(&init).unwrap();
        assert!(!parsed.is_protected(), "netflix audio ships clear");
        let seg = cdn.fetch_asset("asset/netflix/title-001/audio-en/seg/1").unwrap();
        assert!(!seg.is_empty());
    }

    #[test]
    fn video_assets_are_protected() {
        let (_, cdn) = cdn();
        let init = cdn.fetch_asset("asset/hulu/title-001/video-540p/init").unwrap();
        assert!(InitSegment::from_bytes(&init).unwrap().is_protected());
    }

    #[test]
    fn subtitles_are_clear_ascii() {
        let (_, cdn) = cdn();
        let sub = cdn.fetch_asset("asset/amazon/title-001/sub/en").unwrap();
        assert!(sub.is_ascii());
    }

    #[test]
    fn unknown_paths_not_found() {
        let (_, cdn) = cdn();
        for path in [
            "asset/netflix/title-001/video-999p/init",
            "asset/netflix/no-such-title/video-540p/init",
            "asset/no-such-app/title-001/video-540p/init",
            "asset/netflix/title-001/video-540p/seg/99",
            "bogus",
        ] {
            assert!(matches!(cdn.fetch_asset(path), Err(OttError::NotFound { .. })), "{path}");
        }
    }

    #[test]
    fn asset_store_caches() {
        let (_, cdn) = cdn();
        let a = cdn.fetch_asset("asset/hulu/title-001/video-540p/init").unwrap();
        let b = cdn.fetch_asset("asset/hulu/title-001/video-540p/init").unwrap();
        assert_eq!(a, b);
    }
}
