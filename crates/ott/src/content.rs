//! The content catalog and CENC packager.
//!
//! Titles are synthetic but structurally faithful: every title is packaged
//! per app into DASH representations — three video resolutions (each with
//! its *own* content key, the practice all ten apps follow), audio tracks
//! per language (clear, sharing the video key, or distinctly keyed,
//! depending on the app's policy), and plaintext subtitle tracks.

use wideleak_bmff::fragment::{InitSegment, TrackKind};
use wideleak_bmff::types::{KeyId, Pssh, Tenc};
use wideleak_cenc::keys::ContentKey;
use wideleak_cenc::track::{clear_segment, encrypt_segment, Scheme};

/// How an app protects its audio tracks (the Q2/Q3 policy axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioProtection {
    /// Audio ships in the clear (Netflix, myCanal, Salto).
    Clear,
    /// Audio is encrypted with the same key as the lowest video rendition
    /// (the widespread "minimal" practice).
    SharedKeyWithVideo,
    /// Audio gets its own key (only Amazon Prime Video).
    DistinctKey,
}

/// The video resolutions every title is packaged at.
pub const RESOLUTIONS: [(u32, u32); 3] = [(960, 540), (1280, 720), (1920, 1080)];

/// The qHD ceiling: the best resolution an L3 device is licensed for.
pub const L3_MAX_HEIGHT: u32 = 540;

/// Audio languages packaged for every title.
pub const AUDIO_LANGS: [&str; 2] = ["en", "fr"];

/// Subtitle languages packaged for every title.
pub const SUBTITLE_LANGS: [&str; 2] = ["en", "fr"];

/// Segments per representation.
pub const SEGMENTS_PER_REP: u32 = 2;

/// Nominal wall duration of one media segment in milliseconds. The
/// bandwidth model charges a segment fetch at its representation's
/// declared bandwidth over this duration (the virtual encoded size),
/// not at the synthetic payload's byte count.
pub const SEGMENT_DURATION_MS: u64 = 4_000;

/// Samples per segment.
pub const SAMPLES_PER_SEGMENT: usize = 3;

/// A catalog title.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Title {
    /// Stable identifier used in URLs and license requests.
    pub id: String,
    /// Display name.
    pub name: String,
}

impl Title {
    /// Creates a title.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        Title { id: id.into(), name: name.into() }
    }
}

/// The default demo catalog.
pub fn demo_catalog() -> Vec<Title> {
    vec![Title::new("title-001", "The First Stream"), Title::new("title-002", "Pirates of the CDN")]
}

/// Derives a deterministic key ID from a label (app/title/track scoped —
/// deliberately *not* subscriber scoped, reproducing the paper's finding
/// that all subscribers receive the same keys for a given media).
pub fn kid_from_label(label: &str) -> KeyId {
    let mut out = [0u8; 16];
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for (i, byte) in out.iter_mut().enumerate() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *byte = (state >> (8 * (i % 8))) as u8;
    }
    KeyId(out)
}

/// Derives the deterministic content key for a key ID label.
pub fn key_from_label(label: &str) -> ContentKey {
    ContentKey::from_label(&format!("content-key:{label}"))
}

/// Track identity within one title's packaging.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TrackSelector {
    /// A video rendition at the given height.
    Video {
        /// Vertical resolution.
        height: u32,
    },
    /// An audio track for a language.
    Audio {
        /// Language tag.
        lang: String,
    },
    /// A subtitle track for a language.
    Subtitle {
        /// Language tag.
        lang: String,
    },
}

impl TrackSelector {
    /// Representation id used in MPDs and URLs.
    pub fn rep_id(&self) -> String {
        match self {
            TrackSelector::Video { height } => format!("video-{height}p"),
            TrackSelector::Audio { lang } => format!("audio-{lang}"),
            TrackSelector::Subtitle { lang } => format!("sub-{lang}"),
        }
    }
}

/// Key-id label for a track of a title under an app's policy.
pub fn track_key_label(
    app: &str,
    title_id: &str,
    selector: &TrackSelector,
    audio: AudioProtection,
) -> Option<String> {
    match selector {
        TrackSelector::Video { height } => Some(format!("{app}/{title_id}/video-{height}")),
        TrackSelector::Audio { .. } => match audio {
            AudioProtection::Clear => None,
            // Shared: same label as the lowest video rendition.
            AudioProtection::SharedKeyWithVideo => {
                Some(format!("{app}/{title_id}/video-{}", RESOLUTIONS[0].1))
            }
            AudioProtection::DistinctKey => Some(format!("{app}/{title_id}/audio")),
        },
        TrackSelector::Subtitle { .. } => None,
    }
}

/// Synthesizes the plaintext samples of one segment, deterministic in all
/// coordinates; video sample sizes scale with resolution.
pub fn synth_samples(
    app: &str,
    title_id: &str,
    selector: &TrackSelector,
    segment: u32,
) -> Vec<Vec<u8>> {
    let (kind_tag, size) = match selector {
        TrackSelector::Video { height } => ("v", (*height as usize) * 4),
        TrackSelector::Audio { .. } => ("a", 960),
        TrackSelector::Subtitle { .. } => ("s", 400),
    };
    (0..SAMPLES_PER_SEGMENT)
        .map(|i| {
            let label = format!("{app}/{title_id}/{kind_tag}/{}/{segment}/{i}", selector.rep_id());
            let mut state = 0x9e37_79b9u64;
            for b in label.bytes() {
                state = state.rotate_left(7) ^ b as u64;
            }
            (0..size)
                .map(|j| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> (j % 8)) as u8
                })
                .collect()
        })
        .collect()
}

/// Synthesizes subtitle text (ASCII, the property the monitor checks).
pub fn synth_subtitles(app: &str, title_id: &str, lang: &str) -> Vec<u8> {
    format!(
        "WEBVTT\n\n00:00.000 --> 00:05.000\n[{lang}] Subtitles for {title_id} on {app}.\n\n\
         00:05.000 --> 00:10.000\n[{lang}] Delivered in the clear.\n"
    )
    .into_bytes()
}

/// One packaged (serialized) representation: an init segment plus media
/// segments, ready for CDN storage.
#[derive(Debug, Clone)]
pub struct PackagedRepresentation {
    /// The track selector this packaging belongs to.
    pub selector: TrackSelector,
    /// Key-id label, `None` when the track ships clear.
    pub key_label: Option<String>,
    /// Serialized init segment.
    pub init: Vec<u8>,
    /// Serialized media segments.
    pub segments: Vec<Vec<u8>>,
}

/// Packages one track of a title for an app.
///
/// # Panics
///
/// Panics only on internal packaging inconsistencies (fixed subsample
/// policies always validate).
pub fn package_track(
    app: &str,
    title_id: &str,
    selector: &TrackSelector,
    audio_policy: AudioProtection,
) -> PackagedRepresentation {
    let kind = match selector {
        TrackSelector::Video { .. } => TrackKind::Video,
        TrackSelector::Audio { .. } => TrackKind::Audio,
        TrackSelector::Subtitle { .. } => TrackKind::Subtitle,
    };
    let track_id = 1;
    let key_label = track_key_label(app, title_id, selector, audio_policy);

    match &key_label {
        Some(label) => {
            let kid = kid_from_label(label);
            let key = key_from_label(label);
            let tenc = Tenc::cenc(kid);
            let init = InitSegment::protected(
                track_id,
                kind,
                Scheme::Cenc.fourcc(),
                tenc.clone(),
                vec![Pssh::widevine(vec![kid], title_id.as_bytes().to_vec())],
            );
            let segments = (1..=SEGMENTS_PER_REP)
                .map(|seg| {
                    let samples = synth_samples(app, title_id, selector, seg);
                    encrypt_segment(
                        Scheme::Cenc,
                        &key,
                        &tenc,
                        kind,
                        track_id,
                        seg,
                        &samples,
                        0x5eed,
                    )
                    .expect("fixed packaging policy always validates")
                    .to_bytes()
                })
                .collect();
            PackagedRepresentation {
                selector: selector.clone(),
                key_label,
                init: init.to_bytes(),
                segments,
            }
        }
        None => {
            let init = InitSegment::clear(track_id, kind);
            let segments = (1..=SEGMENTS_PER_REP)
                .map(|seg| {
                    let samples = synth_samples(app, title_id, selector, seg);
                    clear_segment(track_id, seg, &samples).to_bytes()
                })
                .collect();
            PackagedRepresentation {
                selector: selector.clone(),
                key_label: None,
                init: init.to_bytes(),
                segments,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_bmff::fragment::MediaSegment;
    use wideleak_cenc::keys::MemoryKeyStore;
    use wideleak_cenc::track::decrypt_segment;

    #[test]
    fn kid_is_deterministic_and_label_separated() {
        assert_eq!(kid_from_label("a"), kid_from_label("a"));
        assert_ne!(kid_from_label("a"), kid_from_label("b"));
    }

    #[test]
    fn video_tracks_always_keyed_per_resolution() {
        let mut kids = Vec::new();
        for (_, h) in RESOLUTIONS {
            let label = track_key_label(
                "app",
                "t",
                &TrackSelector::Video { height: h },
                AudioProtection::Clear,
            )
            .unwrap();
            kids.push(kid_from_label(&label));
        }
        kids.sort_by_key(|k| k.0);
        kids.dedup();
        assert_eq!(kids.len(), 3, "one key per resolution");
    }

    #[test]
    fn audio_policy_controls_key_label() {
        let audio = TrackSelector::Audio { lang: "en".into() };
        assert_eq!(track_key_label("a", "t", &audio, AudioProtection::Clear), None);
        let shared =
            track_key_label("a", "t", &audio, AudioProtection::SharedKeyWithVideo).unwrap();
        let video540 = track_key_label(
            "a",
            "t",
            &TrackSelector::Video { height: 540 },
            AudioProtection::Clear,
        )
        .unwrap();
        assert_eq!(shared, video540, "minimal practice shares the 540p key");
        let distinct = track_key_label("a", "t", &audio, AudioProtection::DistinctKey).unwrap();
        assert_ne!(distinct, video540);
    }

    #[test]
    fn subtitles_never_keyed() {
        let sub = TrackSelector::Subtitle { lang: "en".into() };
        for policy in [
            AudioProtection::Clear,
            AudioProtection::SharedKeyWithVideo,
            AudioProtection::DistinctKey,
        ] {
            assert_eq!(track_key_label("a", "t", &sub, policy), None);
        }
    }

    #[test]
    fn packaged_video_round_trips_through_decryption() {
        let sel = TrackSelector::Video { height: 540 };
        let rep = package_track("netflix", "title-001", &sel, AudioProtection::Clear);
        let label = rep.key_label.clone().unwrap();
        let init = InitSegment::from_bytes(&rep.init).unwrap();
        assert!(init.is_protected());

        let mut keys = MemoryKeyStore::new();
        keys.insert(kid_from_label(&label), key_from_label(&label));
        for (i, seg_bytes) in rep.segments.iter().enumerate() {
            let seg = MediaSegment::from_bytes(seg_bytes).unwrap();
            let decrypted = decrypt_segment(&init, &seg, &keys).unwrap();
            let expected = synth_samples("netflix", "title-001", &sel, (i + 1) as u32);
            assert_eq!(decrypted, expected);
        }
    }

    #[test]
    fn clear_audio_is_directly_readable() {
        let sel = TrackSelector::Audio { lang: "en".into() };
        let rep = package_track("netflix", "title-001", &sel, AudioProtection::Clear);
        assert!(rep.key_label.is_none());
        let init = InitSegment::from_bytes(&rep.init).unwrap();
        assert!(!init.is_protected());
        let seg = MediaSegment::from_bytes(&rep.segments[0]).unwrap();
        assert!(seg.senc.is_none());
        assert_eq!(
            seg.samples().unwrap().concat(),
            synth_samples("netflix", "title-001", &sel, 1).concat()
        );
    }

    #[test]
    fn encrypted_audio_is_not_readable_without_key() {
        let sel = TrackSelector::Audio { lang: "en".into() };
        let rep = package_track("hulu", "title-001", &sel, AudioProtection::SharedKeyWithVideo);
        assert!(rep.key_label.is_some());
        let seg = MediaSegment::from_bytes(&rep.segments[0]).unwrap();
        assert!(seg.senc.is_some());
        let plain = synth_samples("hulu", "title-001", &sel, 1).concat();
        assert_ne!(seg.data, plain, "ciphertext differs from plaintext");
    }

    #[test]
    fn subtitles_are_ascii() {
        let sub = synth_subtitles("ocs", "title-001", "en");
        assert!(sub.is_ascii());
        assert!(String::from_utf8(sub).unwrap().contains("WEBVTT"));
    }

    #[test]
    fn samples_deterministic_and_scaled() {
        let v540 = synth_samples("a", "t", &TrackSelector::Video { height: 540 }, 1);
        let v540_again = synth_samples("a", "t", &TrackSelector::Video { height: 540 }, 1);
        assert_eq!(v540, v540_again);
        let v1080 = synth_samples("a", "t", &TrackSelector::Video { height: 1080 }, 1);
        assert!(v1080[0].len() > v540[0].len());
        assert_eq!(v540.len(), SAMPLES_PER_SEGMENT);
    }

    #[test]
    fn keys_do_not_depend_on_subscriber() {
        // Label space has no account component at all; assert the shape.
        let label = track_key_label(
            "showtime",
            "title-002",
            &TrackSelector::Video { height: 720 },
            AudioProtection::SharedKeyWithVideo,
        )
        .unwrap();
        assert_eq!(label, "showtime/title-002/video-720");
    }

    #[test]
    fn demo_catalog_nonempty() {
        let cat = demo_catalog();
        assert!(cat.len() >= 2);
        assert_ne!(cat[0].id, cat[1].id);
    }
}
