//! Ecosystem wiring: boots the backend servers, issues keyboxes, boots
//! device DRM stacks and installs apps on them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wideleak_android_drm::binder::{InProcessBinder, ThreadedBinder, Transport, TransportKind};
use wideleak_android_drm::netserver::TcpBinder;
use wideleak_android_drm::server::MediaDrmServer;
use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
use wideleak_cdm::cdm::Cdm;
use wideleak_cdm::messages::ProvisioningRequest;
use wideleak_cdm::wire::TlvReader;
use wideleak_device::catalog::DeviceModel;
use wideleak_device::net::{NetError, RemoteEndpoint};
use wideleak_device::Device;
use wideleak_faults::{corrupt_body, FaultInjector, FaultKind, FaultPlan, Plane, ResiliencePolicy};

use crate::accounts::AccountRegistry;
use crate::apps::{encode_backend_error, evaluated_apps, AppProfile, EmbeddedWidevine, OttApp};
use crate::bandwidth::{BandwidthConfig, ClientLink};
use crate::cache::{CacheConfig, CacheStats, ProvisionCertCache};
use crate::cdn::CdnServer;
use crate::content::{demo_catalog, Title};
use crate::license::LicenseServer;
use crate::provisioning::{ProvisioningServer, RevocationPolicy};
use crate::trust::TrustAuthority;
use crate::OttError;

/// Ecosystem construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcosystemConfig {
    /// Master seed for every deterministic derivation.
    pub seed: u64,
    /// Device RSA key size. Production Widevine uses 2048; tests shrink
    /// this for speed.
    pub rsa_bits: usize,
    /// The Widevine revocation floor.
    pub revocation: RevocationPolicy,
    /// Whether the license server cross-checks claimed security levels
    /// against provisioning-time attestations. `true` models Android's
    /// deployment; `false` models the web-browser deployments the
    /// netflix-1080p exploit abused (paper §V-C).
    pub verify_attested_level: bool,
    /// Faults injected into server and binder traffic. Empty by default:
    /// the study's Table-I results are produced with no plan at all.
    pub fault_plan: FaultPlan,
    /// How installed app clients react to failures.
    pub resilience: ResiliencePolicy,
    /// Which hot-path caches run. All off by default: the published
    /// tables are produced cache-free, and enabling any cache must leave
    /// them byte-identical.
    pub caches: CacheConfig,
    /// Which binder transport booted devices use. In-process by default;
    /// the differential battery pins that threaded and TCP produce
    /// byte-identical study output, so this is a realism/perf knob only.
    pub transport: TransportKind,
    /// How many calls a TCP binder may keep in flight on one shared
    /// connection. ≤ 1 (the default) keeps the pooled
    /// one-call-per-socket mode; ≥ 2 enables request-id pipelining.
    /// Ignored by the in-memory transports.
    pub tcp_pipeline_depth: usize,
    /// Bandwidth model applied to adaptive playbacks. `None` (the
    /// default) leaves every non-adaptive path untouched and mints
    /// unconstrained links for adaptive ones, keeping the Table I and
    /// Q5 batteries byte-identical.
    pub bandwidth: Option<BandwidthConfig>,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 2022,
            rsa_bits: 2048,
            revocation: RevocationPolicy::default(),
            verify_attested_level: true,
            fault_plan: FaultPlan::empty(),
            resilience: ResiliencePolicy::default(),
            caches: CacheConfig::none(),
            transport: TransportKind::InProcess,
            tcp_pipeline_depth: 1,
            bandwidth: None,
        }
    }
}

impl EcosystemConfig {
    /// A fast configuration for unit/integration tests (small RSA keys).
    pub fn fast_for_tests() -> Self {
        EcosystemConfig { rsa_bits: 768, ..Default::default() }
    }

    /// The fast test configuration with a fault plan attached — the
    /// resilience study's starting point.
    pub fn fast_with_faults(fault_plan: FaultPlan) -> Self {
        EcosystemConfig { fault_plan, ..Self::fast_for_tests() }
    }
}

/// The single backend endpoint all app traffic reaches: routes paths to
/// the provisioning server, the license server, or the CDN — applying the
/// owning app's policy at each.
pub struct BackendRouter {
    provisioning: Arc<ProvisioningServer>,
    license: Arc<LicenseServer>,
    cdn: Arc<CdnServer>,
    profiles: HashMap<String, AppProfile>,
    injector: Arc<FaultInjector>,
}

impl std::fmt::Debug for BackendRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BackendRouter(apps: {})", self.profiles.len())
    }
}

impl BackendRouter {
    fn route(&self, path: &str, body: &[u8]) -> Result<Vec<u8>, OttError> {
        let parts: Vec<&str> = path.split('/').collect();
        let endpoint = match parts.first() {
            Some(&"provision") => "provision",
            Some(&"license") => "license",
            Some(&"manifest") => "manifest",
            Some(&"asset") => "asset",
            _ => "unknown",
        };
        let _span = wideleak_telemetry::span!("ott.server.request", endpoint = endpoint);
        let result = self.faulted_dispatch(parts.as_slice(), path, body);
        if wideleak_telemetry::is_enabled() {
            wideleak_telemetry::incr(&format!("ott.server.requests.{endpoint}"));
            if let Err(e) = &result {
                wideleak_faults::record_error("ott.server.error", e);
            }
        }
        result
    }

    /// Consults the fault plan before (and, for body corruption, after)
    /// the real dispatch — the single seam where every server-plane fault
    /// composes.
    fn faulted_dispatch(
        &self,
        parts: &[&str],
        path: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, OttError> {
        let Some(kind) =
            self.injector.is_active().then(|| self.injector.decide(Plane::Server, path)).flatten()
        else {
            return self.dispatch(parts, path, body);
        };
        match kind {
            FaultKind::ErrorCode => {
                Err(OttError::Protocol { reason: "injected: internal server error".into() })
            }
            FaultKind::Panic => {
                Err(OttError::Protocol { reason: "injected: server worker panicked".into() })
            }
            FaultKind::Drop => Err(OttError::Net(NetError::ConnectionReset)),
            FaultKind::Latency { ms } => {
                self.injector.clock().advance_ms(ms);
                self.dispatch(parts, path, body)
            }
            FaultKind::ClockSkew { secs } => {
                // Server-plane skew jumps the shared timeline itself.
                self.injector.clock().advance_ms(secs.saturating_mul(1000));
                self.dispatch(parts, path, body)
            }
            kind @ (FaultKind::TruncateBody { .. } | FaultKind::GarbleBody) => {
                self.dispatch(parts, path, body).map(|response| corrupt_body(&kind, response))
            }
        }
    }

    fn dispatch(&self, parts: &[&str], path: &str, body: &[u8]) -> Result<Vec<u8>, OttError> {
        match parts {
            ["provision", slug] => {
                let profile = self
                    .profiles
                    .get(*slug)
                    .ok_or_else(|| OttError::NotFound { what: format!("app {slug}") })?;
                let request = ProvisioningRequest::parse(body)?;
                let response = self.provisioning.provision(&request, profile.enforce_revocation)?;
                Ok(response.to_bytes())
            }
            ["license", slug, title] => {
                let profile = self
                    .profiles
                    .get(*slug)
                    .ok_or_else(|| OttError::NotFound { what: format!("app {slug}") })?;
                let r = TlvReader::parse(body)
                    .map_err(|_| OttError::Protocol { reason: "bad license envelope".into() })?;
                let token = r
                    .require_string(1)
                    .map_err(|_| OttError::Protocol { reason: "missing account token".into() })?;
                let request =
                    wideleak_cdm::messages::LicenseRequest::parse(r.require(2).map_err(|_| {
                        OttError::Protocol { reason: "missing license request".into() }
                    })?)?;
                let response = self.license.issue_license(
                    slug,
                    title,
                    profile.license_policy(),
                    &token,
                    &request,
                )?;
                Ok(response.to_bytes())
            }
            ["manifest", slug, title] => {
                let token = String::from_utf8(body.to_vec()).map_err(|_| OttError::Unauthorized)?;
                self.cdn.fetch_manifest(slug, title, &token)
            }
            ["asset", ..] => self.cdn.fetch_asset(path),
            _ => Err(OttError::NotFound { what: path.to_owned() }),
        }
    }
}

impl RemoteEndpoint for BackendRouter {
    fn handle(&self, path: &str, body: &[u8]) -> Result<Vec<u8>, String> {
        self.route(path, body).map_err(|e| encode_backend_error(&e))
    }
}

/// One booted device with its DRM stack.
pub struct DeviceStack {
    /// The device (memory, hooks, network).
    pub device: Arc<Device>,
    /// The Widevine HAL plugin.
    pub cdm: Arc<Cdm>,
    /// The IPC transport apps use.
    pub binder: Arc<dyn Transport>,
    /// Unique instance name (keybox device id prefix).
    pub instance_name: String,
}

impl std::fmt::Debug for DeviceStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeviceStack({})", self.instance_name)
    }
}

/// The full simulated ecosystem.
pub struct Ecosystem {
    config: EcosystemConfig,
    trust: Arc<TrustAuthority>,
    accounts: Arc<AccountRegistry>,
    backend: Arc<BackendRouter>,
    provisioning: Arc<ProvisioningServer>,
    license: Arc<LicenseServer>,
    cert_cache: Option<Arc<ProvisionCertCache>>,
    injector: Arc<FaultInjector>,
    profiles: Vec<AppProfile>,
    titles: Vec<Title>,
    device_counter: AtomicU64,
    link_counter: AtomicU64,
}

impl std::fmt::Debug for Ecosystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ecosystem(apps: {}, titles: {}, rsa: {} bits)",
            self.profiles.len(),
            self.titles.len(),
            self.config.rsa_bits
        )
    }
}

impl Ecosystem {
    /// Boots the backend: trust authority, provisioning server, license
    /// server, CDN, and the ten evaluated app profiles over the demo
    /// catalog.
    pub fn new(config: EcosystemConfig) -> Self {
        Self::with_profiles(config, evaluated_apps(), demo_catalog())
    }

    /// Boots the backend with custom app profiles and catalog — the
    /// ablation benches use this to toggle single policy axes.
    pub fn with_profiles(
        config: EcosystemConfig,
        profiles: Vec<AppProfile>,
        titles: Vec<Title>,
    ) -> Self {
        let trust = Arc::new(TrustAuthority::new(config.seed));
        let accounts = Arc::new(AccountRegistry::new());
        let injector = Arc::new(FaultInjector::new(&config.fault_plan, config.seed ^ 0xFA17));
        let cert_cache =
            config.caches.provisioning_cert.then(|| Arc::new(ProvisionCertCache::new()));
        let mut provisioning_builder = ProvisioningServer::builder(trust.clone())
            .policy(config.revocation)
            .rsa_bits(config.rsa_bits)
            .seed(config.seed ^ 0x1111);
        if let Some(cache) = &cert_cache {
            provisioning_builder = provisioning_builder.cert_cache(cache.clone());
        }
        let provisioning = Arc::new(provisioning_builder.build());
        let mut license_builder = LicenseServer::builder(trust.clone(), accounts.clone())
            .revocation(config.revocation)
            .verify_attested_level(config.verify_attested_level)
            .seed(config.seed ^ 0x2222);
        if config.caches.license_response {
            license_builder = license_builder.response_cache(injector.clock().clone());
        }
        let license = Arc::new(license_builder.build());
        let cdn = Arc::new(CdnServer::new(
            accounts.clone(),
            profiles.iter().map(AppProfile::cdn_config).collect(),
            titles.clone(),
        ));
        let backend = Arc::new(BackendRouter {
            provisioning: provisioning.clone(),
            license: license.clone(),
            cdn,
            profiles: profiles.iter().map(|p| (p.slug.to_owned(), p.clone())).collect(),
            injector: injector.clone(),
        });
        Ecosystem {
            config,
            trust,
            accounts,
            backend,
            provisioning,
            license,
            cert_cache,
            injector,
            profiles,
            titles,
            device_counter: AtomicU64::new(0),
            link_counter: AtomicU64::new(0),
        }
    }

    /// Mints the next client's bandwidth link for an adaptive playback.
    ///
    /// Links are numbered in mint order, so a fixed sequence of
    /// `adaptive_link` calls against a fresh ecosystem is a pure
    /// function of the seed. Without a configured bandwidth model the
    /// link is unconstrained (fetches complete in ~0 simulated time).
    pub fn adaptive_link(&self) -> ClientLink {
        let idx = self.link_counter.fetch_add(1, Ordering::SeqCst);
        match &self.config.bandwidth {
            Some(bw) => bw.link(self.config.seed, idx),
            None => BandwidthConfig::unconstrained().link(self.config.seed, idx),
        }
    }

    /// The ecosystem's fault injector: its log is the determinism
    /// witness, its clock the shared timeline.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The evaluated app profiles (Table-I ground truth).
    pub fn profiles(&self) -> &[AppProfile] {
        &self.profiles
    }

    /// Finds a profile by slug.
    pub fn profile(&self, slug: &str) -> Option<&AppProfile> {
        self.profiles.iter().find(|p| p.slug == slug)
    }

    /// The content catalog.
    pub fn titles(&self) -> &[Title] {
        &self.titles
    }

    /// The backend endpoint (for tooling that talks to servers directly).
    pub fn backend(&self) -> &Arc<BackendRouter> {
        &self.backend
    }

    /// The trust authority (the simulation's stand-in for Google's keybox
    /// records; the monitor and attack never touch it).
    pub fn trust(&self) -> &Arc<TrustAuthority> {
        &self.trust
    }

    /// The account registry.
    pub fn accounts(&self) -> &Arc<AccountRegistry> {
        &self.accounts
    }

    /// The active cache configuration.
    pub fn cache_config(&self) -> CacheConfig {
        self.config.caches
    }

    /// Provisioning-certificate cache counters, when that cache runs.
    pub fn provisioning_cache_stats(&self) -> Option<CacheStats> {
        self.provisioning.cert_cache_stats()
    }

    /// License-response cache counters, when that cache runs.
    pub fn license_cache_stats(&self) -> Option<CacheStats> {
        self.license.response_cache_stats()
    }

    /// Rotates a device's keybox in place: the trust authority issues a
    /// fresh-generation keybox under the same identity, the device's CDM
    /// installs it, and the provisioning-certificate cache drops the now
    /// stale wrap material for that identity.
    ///
    /// # Errors
    ///
    /// Propagates keybox installation failures from the CDM.
    pub fn rotate_keybox(&self, stack: &DeviceStack) -> Result<(), OttError> {
        let keybox = self.trust.rotate_keybox(&stack.instance_name);
        let device_id = keybox.device_id().to_vec();
        stack.cdm.oemcrypto().install_keybox(keybox)?;
        if let Some(cache) = &self.cert_cache {
            cache.invalidate(&device_id);
        }
        Ok(())
    }

    /// Boots a device of the given model with its full DRM stack, on the
    /// transport the config names. `rooted` is the attacker/researcher
    /// configuration.
    pub fn boot_device(&self, model: DeviceModel, rooted: bool) -> DeviceStack {
        self.boot_device_with(model, rooted, self.config.transport)
    }

    /// Boots a device whose media DRM server runs on a worker pool,
    /// regardless of the config's transport.
    pub fn boot_device_threaded(&self, model: DeviceModel, rooted: bool) -> DeviceStack {
        self.boot_device_with(model, rooted, TransportKind::Threaded)
    }

    /// Boots a device on an explicit transport — the differential
    /// battery sweeps this over all of [`TransportKind::ALL`].
    pub fn boot_device_with(
        &self,
        model: DeviceModel,
        rooted: bool,
        transport: TransportKind,
    ) -> DeviceStack {
        let n = self.device_counter.fetch_add(1, Ordering::SeqCst);
        let instance_name = format!("{}#{n}", model.name.to_lowercase().replace(' ', "-"));
        let device = Arc::new(if rooted { Device::rooted(model) } else { Device::new(model) });
        let keybox = self.trust.issue_keybox(&instance_name);
        let cdm = Arc::new(
            Cdm::builder()
                .keybox(keybox)
                .decrypt_cache(self.config.caches.decrypt_keys)
                .boot(&device)
                .expect("keybox installation succeeds"),
        );
        let mut server = MediaDrmServer::new();
        server.register_plugin(WIDEVINE_SYSTEM_ID, cdm.clone());
        let binder: Arc<dyn Transport> = match transport {
            TransportKind::InProcess => {
                Arc::new(InProcessBinder::new(server).with_fault_injector(self.injector.clone()))
            }
            TransportKind::Threaded => Arc::new(
                ThreadedBinder::builder(server).fault_injector(self.injector.clone()).spawn(),
            ),
            TransportKind::Tcp => Arc::new(
                TcpBinder::loopback(server)
                    .fault_injector(self.injector.clone())
                    .pipeline_depth(self.config.tcp_pipeline_depth)
                    .build()
                    .expect("binding a loopback media drm server"),
            ),
        };
        DeviceStack { device, cdm, binder, instance_name }
    }

    /// Builds a standalone media DRM server — a keybox-provisioned CDM
    /// registered under the Widevine system id — without wrapping it in
    /// a binder. `wideleak serve` exports one of these over TCP for
    /// remote [`TcpBinder`] clients.
    pub fn media_drm_server(&self, model: DeviceModel) -> MediaDrmServer {
        let n = self.device_counter.fetch_add(1, Ordering::SeqCst);
        let instance_name = format!("{}#{n}", model.name.to_lowercase().replace(' ', "-"));
        let device = Arc::new(Device::new(model));
        let keybox = self.trust.issue_keybox(&instance_name);
        let cdm = Arc::new(
            Cdm::builder()
                .keybox(keybox)
                .decrypt_cache(self.config.caches.decrypt_keys)
                .boot(&device)
                .expect("keybox installation succeeds"),
        );
        let mut server = MediaDrmServer::new();
        server.register_plugin(WIDEVINE_SYSTEM_ID, cdm);
        server
    }

    /// Installs an app on a device for a subscriber, creating the
    /// subscription.
    ///
    /// # Panics
    ///
    /// Panics when `slug` is not one of the evaluated apps.
    pub fn install_app(&self, stack: &DeviceStack, slug: &str, user: &str) -> OttApp {
        let profile = self.profile(slug).expect("known app slug").clone();
        let token = self.accounts.subscribe(slug, user);
        let embedded = if profile.custom_drm_on_l3 || profile.always_custom_drm {
            let kb = self
                .trust
                .issue_keybox(&format!("{}-embedded-{}", profile.slug, stack.instance_name));
            Some(EmbeddedWidevine::new(kb))
        } else {
            None
        };
        OttApp::install(
            profile,
            self.backend.clone() as Arc<dyn RemoteEndpoint>,
            stack.device.network().clone(),
            stack.binder.clone(),
            stack.device.model().security_level,
            token,
            embedded,
        )
        .with_device(stack.device.clone())
        .with_resilience(self.config.resilience.clone(), self.injector.clock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{synth_samples, TrackSelector, SEGMENTS_PER_REP};

    fn ecosystem() -> Ecosystem {
        Ecosystem::new(EcosystemConfig::fast_for_tests())
    }

    #[test]
    fn netflix_plays_on_modern_l1_device() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "netflix", "alice");
        let outcome = app.play("title-001").unwrap();
        assert!(outcome.used_platform_widevine);
        assert_eq!(outcome.resolution, (1920, 1080), "L1 gets HD");
        assert!(outcome.trace.as_ref().unwrap().matches_figure_1());
        // Video decrypted correctly.
        let expected: Vec<Vec<u8>> = (1..=SEGMENTS_PER_REP)
            .flat_map(|seg| {
                synth_samples("netflix", "title-001", &TrackSelector::Video { height: 1080 }, seg)
            })
            .collect();
        assert_eq!(outcome.video_samples, expected);
        // Clear audio came through; subtitles visible and clear.
        assert!(!outcome.audio_samples.is_empty());
        assert!(outcome.subtitle_text.unwrap().contains("WEBVTT"));
    }

    #[test]
    fn netflix_plays_sub_hd_on_discontinued_l3() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::nexus_5(), false);
        let app = eco.install_app(&stack, "netflix", "bob");
        let outcome = app.play("title-001").unwrap();
        assert_eq!(outcome.resolution, (960, 540), "L3 capped at qHD");
    }

    #[test]
    fn disney_refuses_discontinued_device_at_provisioning() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::nexus_5(), false);
        let app = eco.install_app(&stack, "disney", "carol");
        let err = app.play("title-001").unwrap_err();
        assert!(matches!(err, OttError::DeviceRevoked { .. }), "got {err:?}");
    }

    #[test]
    fn disney_plays_on_modern_device() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "disney", "carol");
        let outcome = app.play("title-001").unwrap();
        assert!(outcome.used_platform_widevine);
        // Shared-key audio decrypts too.
        assert!(!outcome.audio_samples.is_empty());
    }

    #[test]
    fn amazon_uses_embedded_drm_on_l3() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::nexus_5(), false);
        let app = eco.install_app(&stack, "amazon", "dave");
        // Record hooks: the platform CDM must stay silent.
        stack.device.hook_engine().start_recording();
        let outcome = app.play("title-001").unwrap();
        let hook_log = stack.device.hook_engine().stop_recording();
        assert!(!outcome.used_platform_widevine);
        assert!(outcome.trace.is_none());
        assert!(
            hook_log
                .iter()
                .all(|e| e.function.contains("Initialize") || e.function.contains("InstallKeybox")),
            "no playback-time platform CDM calls: {hook_log:?}"
        );
        assert_eq!(outcome.resolution, (960, 540));
        assert!(!outcome.video_samples.is_empty());
        assert!(!outcome.audio_samples.is_empty());
    }

    #[test]
    fn amazon_uses_platform_widevine_on_l1() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "amazon", "dave");
        let outcome = app.play("title-001").unwrap();
        assert!(outcome.used_platform_widevine);
        assert_eq!(outcome.resolution, (1920, 1080));
    }

    #[test]
    fn hulu_plays_without_visible_subtitles_or_kids() {
        let eco = ecosystem();
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "hulu", "erin");
        let outcome = app.play("title-001").unwrap();
        assert!(outcome.subtitle_text.is_none(), "subtitle URI undiscoverable");
        assert!(!outcome.audio_samples.is_empty(), "encrypted audio still plays");
    }

    #[test]
    fn playback_works_over_threaded_binder() {
        let eco = ecosystem();
        let stack = eco.boot_device_threaded(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "showtime", "frank");
        let outcome = app.play("title-002").unwrap();
        assert!(outcome.used_platform_widevine);
    }

    #[test]
    fn unknown_backend_path_rejected() {
        let eco = ecosystem();
        assert!(eco.backend().handle("bogus/path", &[]).is_err());
        assert!(eco.backend().handle("provision/unknown-app", &[]).is_err());
    }

    #[test]
    fn cached_ecosystem_plays_byte_identically_and_registers_hits() {
        let plain = ecosystem();
        let cached = Ecosystem::new(EcosystemConfig {
            caches: CacheConfig::all(),
            ..EcosystemConfig::fast_for_tests()
        });
        let mut outcomes = Vec::new();
        for eco in [&plain, &cached] {
            let stack = eco.boot_device(DeviceModel::nexus_5(), false);
            let app = eco.install_app(&stack, "netflix", "alice");
            let first = app.play("title-001").unwrap();
            let second = app.play("title-001").unwrap();
            assert_eq!(first.video_samples, second.video_samples);
            app.reprovision().unwrap();
            outcomes.push((first, stack));
        }
        let (plain_outcome, _) = &outcomes[0];
        let (cached_outcome, cached_stack) = &outcomes[1];
        assert_eq!(plain_outcome.resolution, cached_outcome.resolution);
        assert_eq!(plain_outcome.video_samples, cached_outcome.video_samples);
        assert_eq!(plain_outcome.audio_samples, cached_outcome.audio_samples);
        assert_eq!(plain_outcome.subtitle_text, cached_outcome.subtitle_text);

        assert!(plain.license_cache_stats().is_none());
        assert!(plain.provisioning_cache_stats().is_none());
        let license_stats = cached.license_cache_stats().unwrap();
        assert!(license_stats.hits > 0, "second play reuses license plans: {license_stats:?}");
        let prov_stats = cached.provisioning_cache_stats().unwrap();
        assert_eq!((prov_stats.hits, prov_stats.misses), (1, 1), "check-in hits the cert cache");
        let decrypt_stats = cached_stack.cdm.oemcrypto().decrypt_cache_stats().unwrap();
        assert!(decrypt_stats.key_hits > 0, "repeat samples reuse key schedules");
    }

    #[test]
    fn keybox_rotation_reprovisions_cleanly() {
        let eco = Ecosystem::new(EcosystemConfig {
            caches: CacheConfig::all(),
            ..EcosystemConfig::fast_for_tests()
        });
        let stack = eco.boot_device(DeviceModel::nexus_5(), false);
        let app = eco.install_app(&stack, "netflix", "alice");
        app.play("title-001").unwrap();
        eco.rotate_keybox(&stack).unwrap();
        // The rotated device re-provisions through the full path (the
        // stale cache entry was invalidated) and keeps playing.
        app.reprovision().unwrap();
        app.play("title-001").unwrap();
    }

    #[test]
    fn device_instances_get_unique_names() {
        let eco = ecosystem();
        let a = eco.boot_device(DeviceModel::nexus_5(), false);
        let b = eco.boot_device(DeviceModel::nexus_5(), false);
        assert_ne!(a.instance_name, b.instance_name);
    }
}
