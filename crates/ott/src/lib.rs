//! The simulated over-the-top (OTT) streaming ecosystem.
//!
//! Everything the ten evaluated apps need to exist: a content catalog and
//! CENC packager ([`content`]), the trust authority holding factory
//! keybox records ([`trust`]), the provisioning server ([`provisioning`]),
//! the license server with per-app key policies ([`license`]), the CDN
//! ([`cdn`]), subscriber accounts ([`accounts`]), the app profiles that
//! encode each app's *measured* behaviour from Table I ([`apps`]), the
//! bandwidth-constrained network model ([`bandwidth`]) with its
//! adaptive-bitrate controller ([`adapt`]), and the wiring that boots
//! devices and servers together ([`ecosystem`]).
//!
//! The app profiles are the ground truth the WideLeak monitor
//! (`wideleak-monitor`) must re-derive purely through hooks and network
//! interception — never by reading the profiles directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounts;
pub mod adapt;
pub mod apps;
pub mod bandwidth;
pub mod cache;
pub mod cdn;
pub mod content;
pub mod ecosystem;
pub mod license;
pub mod provisioning;
pub mod trust;

use std::fmt;

/// Errors produced by the OTT backend and app clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OttError {
    /// The account token was missing or invalid.
    Unauthorized,
    /// The requested resource does not exist.
    NotFound {
        /// The requested path or id.
        what: String,
    },
    /// The app's SafetyNet-style attestation detected tampering and the
    /// app refused to run.
    AttestationFailed,
    /// The device was refused for policy reasons (revocation).
    DeviceRevoked {
        /// The CDM version that was refused.
        cdm_version: String,
    },
    /// A DRM-layer failure.
    Drm(wideleak_android_drm::DrmError),
    /// A CDM-layer failure (server side).
    Cdm(wideleak_cdm::CdmError),
    /// A network failure (pinning violations included).
    Net(wideleak_device::net::NetError),
    /// A malformed request or response.
    Protocol {
        /// Description of the problem.
        reason: String,
    },
}

impl OttError {
    /// A stable lowercase label for telemetry error-class counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            OttError::Unauthorized => "unauthorized",
            OttError::NotFound { .. } => "not_found",
            OttError::AttestationFailed => "attestation_failed",
            OttError::DeviceRevoked { .. } => "device_revoked",
            OttError::Drm(_) => "drm",
            OttError::Cdm(_) => "cdm",
            OttError::Net(_) => "net",
            OttError::Protocol { .. } => "protocol",
        }
    }
}

impl wideleak_faults::ErrorClass for OttError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

impl fmt::Display for OttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OttError::Unauthorized => f.write_str("missing or invalid account token"),
            OttError::NotFound { what } => write!(f, "not found: {what}"),
            OttError::AttestationFailed => {
                f.write_str("app attestation failed: tampered environment detected")
            }
            OttError::DeviceRevoked { cdm_version } => {
                write!(f, "device revoked: CDM {cdm_version} no longer accepted")
            }
            OttError::Drm(e) => write!(f, "DRM error: {e}"),
            OttError::Cdm(e) => write!(f, "CDM error: {e}"),
            OttError::Net(e) => write!(f, "network error: {e}"),
            OttError::Protocol { reason } => write!(f, "protocol error: {reason}"),
        }
    }
}

impl std::error::Error for OttError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OttError::Drm(e) => Some(e),
            OttError::Cdm(e) => Some(e),
            OttError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wideleak_android_drm::DrmError> for OttError {
    fn from(e: wideleak_android_drm::DrmError) -> Self {
        OttError::Drm(e)
    }
}

impl From<wideleak_cdm::CdmError> for OttError {
    fn from(e: wideleak_cdm::CdmError) -> Self {
        OttError::Cdm(e)
    }
}

impl From<wideleak_device::net::NetError> for OttError {
    fn from(e: wideleak_device::net::NetError) -> Self {
        OttError::Net(e)
    }
}
