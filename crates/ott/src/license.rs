//! The license server: authenticates devices, applies app policy, and
//! wraps content keys.
//!
//! For every request the server verifies the Device RSA signature against
//! the trust authority's provisioning records, checks the subscriber
//! token, optionally applies revocation (per app), gates HD keys on the
//! device's security level (the reason L3 playback tops out at 540p), and
//! returns the content keys wrapped under the session key ladder.

use std::sync::Arc;

use wideleak_bmff::types::KeyId;
use wideleak_cdm::ladder::derive_session_keys;
use wideleak_cdm::messages::{KeyControl, KeyEntry, LicenseRequest, LicenseResponse};
use wideleak_crypto::aes::Aes128;
use wideleak_crypto::hmac::Hmac;
use wideleak_crypto::modes::cbc_encrypt_padded;
use wideleak_crypto::rng::{random_array, seeded_rng};
use wideleak_crypto::sha256::Sha256;
use wideleak_device::catalog::SecurityLevel;

use crate::accounts::AccountRegistry;
use crate::cache::{LicensePlanEntry, LicensePlanKey, LicenseResponseCache};
use crate::content::{
    key_from_label, kid_from_label, track_key_label, AudioProtection, TrackSelector, L3_MAX_HEIGHT,
    RESOLUTIONS,
};
use crate::provisioning::RevocationPolicy;
use crate::trust::TrustAuthority;
use crate::OttError;

/// Default license duration in seconds (one day, renewable).
pub const DEFAULT_LICENSE_DURATION_SECS: u32 = 86_400;

/// Per-app licensing policy (derived from the app profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LicensePolicy {
    /// How audio is protected (decides which key labels exist).
    pub audio: AudioProtection,
    /// Whether the app honours the revocation list.
    pub enforce_revocation: bool,
    /// Whether the app licenses a non-DASH "URI channel" key used to
    /// protect manifest links (Netflix's secure channel).
    pub uri_channel: bool,
}

/// The key label of an app's non-DASH URI-protection channel.
pub fn uri_channel_label(app: &str, title_id: &str) -> String {
    format!("{app}/{title_id}/uri")
}

/// The license server.
pub struct LicenseServer {
    trust: Arc<TrustAuthority>,
    accounts: Arc<AccountRegistry>,
    revocation: RevocationPolicy,
    /// Whether to cross-check the claimed security level against the
    /// provisioning-time attestation (Android does; per the paper's §V-C,
    /// web-browser deployments effectively do not).
    verify_attested_level: bool,
    seed: u64,
    /// Optional response cache of resolved key plans. The plan — which
    /// keys a `(device, app, title, policy, level, key-id set)` request
    /// resolves to — is nonce-independent; the nonce-derived session key,
    /// IVs and wraps are always recomputed, so cached responses stay
    /// byte-identical to uncached ones.
    response_cache: Option<LicenseResponseCache>,
}

impl std::fmt::Debug for LicenseServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LicenseServer(floor: {})", self.revocation.min_cdm_version)
    }
}

/// Tunable license-server knobs; [`Default`] matches production Android
/// deployments (attestation checked, default revocation floor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LicenseServerConfig {
    /// Revocation floor applied to apps that opt into enforcement.
    pub revocation: RevocationPolicy,
    /// Whether claimed security levels are clamped to the attested one.
    pub verify_attested_level: bool,
    /// Seed for session-key and IV generation.
    pub seed: u64,
}

impl Default for LicenseServerConfig {
    fn default() -> Self {
        LicenseServerConfig {
            revocation: RevocationPolicy::default(),
            verify_attested_level: true,
            seed: 0,
        }
    }
}

/// Builds a [`LicenseServer`]. Obtained from [`LicenseServer::builder`].
pub struct LicenseServerBuilder {
    trust: Arc<TrustAuthority>,
    accounts: Arc<AccountRegistry>,
    config: LicenseServerConfig,
    response_cache: Option<LicenseResponseCache>,
}

impl LicenseServerBuilder {
    /// Replaces the whole configuration at once.
    #[must_use]
    pub fn config(mut self, config: LicenseServerConfig) -> Self {
        self.config = config;
        self
    }

    /// The revocation floor.
    #[must_use]
    pub fn revocation(mut self, revocation: RevocationPolicy) -> Self {
        self.config.revocation = revocation;
        self
    }

    /// Whether to clamp claimed levels to the provisioning-time
    /// attestation (the web-browser-like deployments of §V-C turn this
    /// off).
    #[must_use]
    pub fn verify_attested_level(mut self, verify: bool) -> Self {
        self.config.verify_attested_level = verify;
        self
    }

    /// The keying seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables the license-response cache on the given virtual clock.
    /// Plans expire after the default license duration, so a cached plan
    /// can never outlive the license it produced (`KeyExpired` semantics
    /// are decided by the CDM from load time, unchanged).
    #[must_use]
    pub fn response_cache(mut self, clock: Arc<wideleak_faults::VirtualClock>) -> Self {
        self.response_cache =
            Some(LicenseResponseCache::new(clock, u64::from(DEFAULT_LICENSE_DURATION_SECS) * 1000));
        self
    }

    /// Builds the server.
    #[must_use]
    pub fn build(self) -> LicenseServer {
        LicenseServer {
            trust: self.trust,
            accounts: self.accounts,
            revocation: self.config.revocation,
            verify_attested_level: self.config.verify_attested_level,
            seed: self.config.seed,
            response_cache: self.response_cache,
        }
    }
}

impl LicenseServer {
    /// Starts configuring a license server for a trust authority and an
    /// account registry (the two collaborators every deployment needs).
    #[must_use]
    pub fn builder(
        trust: Arc<TrustAuthority>,
        accounts: Arc<AccountRegistry>,
    ) -> LicenseServerBuilder {
        LicenseServerBuilder {
            trust,
            accounts,
            config: LicenseServerConfig::default(),
            response_cache: None,
        }
    }

    /// Response-cache counters, when the cache is enabled.
    pub fn response_cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.response_cache.as_ref().map(LicenseResponseCache::stats)
    }

    /// Disables attested-level verification — the web-browser-like
    /// configuration the netflix-1080p exploit relied on (§V-C).
    pub fn without_attestation_check(mut self) -> Self {
        self.verify_attested_level = false;
        self
    }

    /// The control block for a key label (video heights gate on L1).
    fn control_for(label: &str) -> KeyControl {
        for (_, h) in RESOLUTIONS {
            if label.ends_with(&format!("/video-{h}")) {
                return KeyControl {
                    max_resolution_height: h,
                    min_security_level: if h > L3_MAX_HEIGHT {
                        SecurityLevel::L1
                    } else {
                        SecurityLevel::L3
                    },
                    duration_seconds: DEFAULT_LICENSE_DURATION_SECS,
                };
            }
        }
        // Audio keys are playable at any level.
        KeyControl {
            max_resolution_height: 0,
            min_security_level: SecurityLevel::L3,
            duration_seconds: DEFAULT_LICENSE_DURATION_SECS,
        }
    }

    /// All key labels that exist for `(app, title)` under a policy.
    fn labels_for(app: &str, title_id: &str, policy: LicensePolicy) -> Vec<String> {
        let mut labels: Vec<String> = RESOLUTIONS
            .iter()
            .filter_map(|&(_, h)| {
                track_key_label(app, title_id, &TrackSelector::Video { height: h }, policy.audio)
            })
            .collect();
        if let Some(audio) = track_key_label(
            app,
            title_id,
            &TrackSelector::Audio { lang: "en".into() },
            policy.audio,
        ) {
            if !labels.contains(&audio) {
                labels.push(audio);
            }
        }
        if policy.uri_channel {
            labels.push(uri_channel_label(app, title_id));
        }
        labels
    }

    /// Handles one license request for `(app, title)`.
    ///
    /// # Errors
    ///
    /// Returns [`OttError::Unauthorized`] for invalid tokens, signatures
    /// or unprovisioned devices; [`OttError::DeviceRevoked`] under
    /// enforcement; [`OttError::NotFound`] when no requested key exists.
    pub fn issue_license(
        &self,
        app: &str,
        title_id: &str,
        policy: LicensePolicy,
        account_token: &str,
        request: &LicenseRequest,
    ) -> Result<LicenseResponse, OttError> {
        if !self.accounts.is_valid(account_token) {
            return Err(OttError::Unauthorized);
        }
        let device_rsa = self.trust.rsa_key(&request.device_id).ok_or(OttError::Unauthorized)?;
        device_rsa
            .verify_pkcs1v15_sha256(&request.body_bytes(), &request.rsa_signature)
            .map_err(|_| OttError::Unauthorized)?;
        if policy.enforce_revocation && self.revocation.is_revoked(request.cdm_version) {
            return Err(OttError::DeviceRevoked { cdm_version: request.cdm_version.to_string() });
        }
        // Effective security level: a client may claim any level, but when
        // attestation checking is on, claims stronger than the
        // provisioning-time attestation are clamped to the attested level.
        let effective_level = if self.verify_attested_level {
            match self.trust.attested_level(&request.device_id) {
                Some(attested) if request.security_level < attested => attested,
                _ => request.security_level,
            }
        } else {
            request.security_level
        };

        // The key *plan* — which keys this (device, app, title, policy,
        // level, key-id set) resolves to — is nonce-independent and is
        // what the response cache holds. Errors are never cached.
        let plan_key = self.response_cache.as_ref().map(|_| {
            let mut key_ids: Vec<[u8; 16]> = request.key_ids.iter().map(|k| k.0).collect();
            key_ids.sort_unstable();
            LicensePlanKey {
                device_id: request.device_id.clone(),
                app: app.to_owned(),
                title: title_id.to_owned(),
                audio: policy.audio as u8,
                enforce_revocation: policy.enforce_revocation,
                uri_channel: policy.uri_channel,
                effective_level: effective_level as u8,
                key_ids,
            }
        });
        let cached_plan = match (&plan_key, &self.response_cache) {
            (Some(key), Some(cache)) => cache.lookup(key),
            _ => None,
        };
        let plan: Vec<LicensePlanEntry> = match cached_plan {
            Some(plan) => plan,
            None => {
                // Resolve requested key ids against this app/title's labels.
                let labels = Self::labels_for(app, title_id, policy);
                let available: Vec<(KeyId, String)> =
                    labels.into_iter().map(|l| (kid_from_label(&l), l)).collect();

                let selected: Vec<&(KeyId, String)> = if request.key_ids.is_empty() {
                    // No explicit key ids: serve everything the level permits.
                    available.iter().collect()
                } else {
                    available.iter().filter(|(kid, _)| request.key_ids.contains(kid)).collect()
                };
                if selected.is_empty() {
                    return Err(OttError::NotFound { what: format!("keys for {title_id}") });
                }
                let mut entries = Vec::new();
                for (kid, label) in selected {
                    let control = Self::control_for(label);
                    // HD keys never leave the server for sub-L1 requesters.
                    if effective_level > control.min_security_level {
                        continue;
                    }
                    entries.push(LicensePlanEntry {
                        kid: kid.0,
                        content_key: key_from_label(label).0,
                        control,
                    });
                }
                if entries.is_empty() {
                    return Err(OttError::NotFound {
                        what: format!("keys for {title_id} at {}", request.security_level),
                    });
                }
                if let (Some(key), Some(cache)) = (plan_key, &self.response_cache) {
                    cache.store(key, entries.clone());
                }
                entries
            }
        };

        if wideleak_telemetry::is_enabled() {
            // Narrow (per-tier) requests are the license-churn signal the
            // adaptation study watches; open requests cover every tier.
            if request.key_ids.is_empty() {
                wideleak_telemetry::incr("license.issued.open");
            } else {
                wideleak_telemetry::incr("license.issued.narrow");
            }
            wideleak_telemetry::add("license.keys_served", plan.len() as u64);
        }

        // Session key and derivation contexts — always nonce-seeded and
        // recomputed, cached plan or not, so responses are byte-identical
        // either way.
        let mut rng = seeded_rng(
            self.seed ^ u64::from_be_bytes(request.nonce[..8].try_into().expect("8 bytes")),
        );
        let session_key: [u8; 16] = random_array(&mut rng);
        let enc_context = format!("ENC|{app}|{title_id}").into_bytes();
        let mac_context = format!("MAC|{app}|{title_id}").into_bytes();
        let keys = derive_session_keys(&session_key, &enc_context, &mac_context);
        let cipher = Aes128::new(&keys.enc_key);

        let key_entries: Vec<KeyEntry> = plan
            .iter()
            .map(|entry| {
                let iv: [u8; 16] = random_array(&mut rng);
                KeyEntry {
                    kid: KeyId(entry.kid),
                    iv,
                    encrypted_key: cbc_encrypt_padded(&cipher, &iv, &entry.content_key),
                    control: entry.control,
                }
            })
            .collect();

        let encrypted_session_key = device_rsa
            .encrypt_oaep(&mut rng, &session_key)
            .map_err(|e| OttError::Protocol { reason: format!("session key wrap: {e}") })?;
        let mut resp = LicenseResponse {
            nonce: request.nonce,
            encrypted_session_key,
            enc_context,
            mac_context,
            key_entries,
            signature: Vec::new(),
        };
        resp.signature = Hmac::<Sha256>::mac(&keys.mac_key_server, &resp.body_bytes());
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provisioning::ProvisioningServer;
    use wideleak_cdm::messages::ProvisioningRequest;
    use wideleak_cdm::provisioning::unwrap_rsa_key;
    use wideleak_crypto::cmac::aes_cmac_with_key;
    use wideleak_crypto::rsa::RsaPrivateKey;
    use wideleak_device::catalog::CdmVersion;

    struct Fixture {
        license: LicenseServer,
        accounts: Arc<AccountRegistry>,
        rsa: RsaPrivateKey,
        device_id: Vec<u8>,
    }

    fn fixture() -> Fixture {
        let trust = Arc::new(TrustAuthority::new(42));
        let accounts = Arc::new(AccountRegistry::new());
        let prov = ProvisioningServer::builder(trust.clone()).rsa_bits(768).seed(1000).build();
        // Provision a device so the license server knows its RSA key.
        let kb = trust.issue_keybox("test-device");
        let mut preq = ProvisioningRequest {
            device_id: kb.device_id().to_vec(),
            cdm_version: CdmVersion::new(3, 1, 0),
            // Attest L1: tests claim both L1 and L3 (weaker claims are
            // always allowed; stronger ones are clamped).
            security_level: SecurityLevel::L1,
            nonce: [1; 16],
            signature: [0; 16],
        };
        preq.signature = aes_cmac_with_key(kb.device_key(), &preq.body_bytes());
        let presp = prov.provision(&preq, false).unwrap();
        let rsa = unwrap_rsa_key(kb.device_key(), kb.device_id(), None, &presp).unwrap();
        let license = LicenseServer::builder(trust, accounts.clone()).seed(7).build();
        Fixture { license, accounts, rsa, device_id: kb.device_id().to_vec() }
    }

    fn signed_request(
        f: &Fixture,
        key_ids: Vec<KeyId>,
        level: SecurityLevel,
        version: CdmVersion,
    ) -> LicenseRequest {
        let mut req = LicenseRequest {
            device_id: f.device_id.clone(),
            content_id: "title-001".into(),
            key_ids,
            nonce: [3; 16],
            cdm_version: version,
            security_level: level,
            rsa_signature: Vec::new(),
        };
        req.rsa_signature = f.rsa.sign_pkcs1v15_sha256(&req.body_bytes()).unwrap();
        req
    }

    fn policy(audio: AudioProtection, enforce: bool) -> LicensePolicy {
        LicensePolicy { audio, enforce_revocation: enforce, uri_channel: false }
    }

    #[test]
    fn issues_sub_hd_keys_to_l3() {
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let req = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(3, 1, 0));
        let resp = f
            .license
            .issue_license(
                "netflix",
                "title-001",
                policy(AudioProtection::Clear, false),
                &token,
                &req,
            )
            .unwrap();
        // Clear-audio app: only video keys exist; L3 gets only 540p.
        assert_eq!(resp.key_entries.len(), 1);
        assert_eq!(resp.key_entries[0].control.max_resolution_height, 540);
    }

    #[test]
    fn issues_all_keys_to_l1() {
        let f = fixture();
        let token = f.accounts.subscribe("amazon", "alice");
        let req = signed_request(&f, vec![], SecurityLevel::L1, CdmVersion::new(16, 0, 0));
        let resp = f
            .license
            .issue_license(
                "amazon",
                "title-001",
                policy(AudioProtection::DistinctKey, false),
                &token,
                &req,
            )
            .unwrap();
        // 3 video resolutions + 1 distinct audio key.
        assert_eq!(resp.key_entries.len(), 4);
    }

    #[test]
    fn shared_audio_key_collapses_with_video() {
        let f = fixture();
        let token = f.accounts.subscribe("hulu", "alice");
        let req = signed_request(&f, vec![], SecurityLevel::L1, CdmVersion::new(16, 0, 0));
        let resp = f
            .license
            .issue_license(
                "hulu",
                "title-001",
                policy(AudioProtection::SharedKeyWithVideo, false),
                &token,
                &req,
            )
            .unwrap();
        // 3 video keys; the audio key *is* the 540p video key.
        assert_eq!(resp.key_entries.len(), 3);
    }

    #[test]
    fn invalid_token_rejected() {
        let f = fixture();
        let req = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(16, 0, 0));
        assert_eq!(
            f.license.issue_license(
                "netflix",
                "title-001",
                policy(AudioProtection::Clear, false),
                "token:netflix:nobody",
                &req,
            ),
            Err(OttError::Unauthorized)
        );
    }

    #[test]
    fn bad_signature_rejected() {
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let mut req = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(16, 0, 0));
        req.rsa_signature[0] ^= 1;
        assert_eq!(
            f.license.issue_license(
                "netflix",
                "title-001",
                policy(AudioProtection::Clear, false),
                &token,
                &req,
            ),
            Err(OttError::Unauthorized)
        );
    }

    #[test]
    fn revocation_enforced_per_app_policy() {
        let f = fixture();
        let token = f.accounts.subscribe("disney", "alice");
        let req = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(3, 1, 0));
        assert!(matches!(
            f.license.issue_license(
                "disney",
                "title-001",
                policy(AudioProtection::SharedKeyWithVideo, true),
                &token,
                &req,
            ),
            Err(OttError::DeviceRevoked { .. })
        ));
        // Same request, lenient app: served.
        assert!(f
            .license
            .issue_license(
                "disney",
                "title-001",
                policy(AudioProtection::SharedKeyWithVideo, false),
                &token,
                &req,
            )
            .is_ok());
    }

    #[test]
    fn unknown_key_ids_not_found() {
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let req = signed_request(
            &f,
            vec![KeyId([0xEE; 16])],
            SecurityLevel::L3,
            CdmVersion::new(16, 0, 0),
        );
        assert!(matches!(
            f.license.issue_license(
                "netflix",
                "title-001",
                policy(AudioProtection::Clear, false),
                &token,
                &req,
            ),
            Err(OttError::NotFound { .. })
        ));
    }

    #[test]
    fn response_cache_keeps_licenses_byte_identical() {
        use wideleak_faults::VirtualClock;
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let cached = LicenseServer::builder(f.license.trust.clone(), f.accounts.clone())
            .seed(7)
            .response_cache(Arc::new(VirtualClock::new()))
            .build();
        let pol = policy(AudioProtection::Clear, false);
        let req = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(3, 1, 0));
        let baseline = f.license.issue_license("netflix", "title-001", pol, &token, &req).unwrap();
        // Miss then hit: both identical to the uncached server.
        assert_eq!(
            cached.issue_license("netflix", "title-001", pol, &token, &req).unwrap(),
            baseline
        );
        assert_eq!(
            cached.issue_license("netflix", "title-001", pol, &token, &req).unwrap(),
            baseline
        );
        let stats = cached.response_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A fresh nonce reuses the plan but re-derives every wrapped byte.
        let mut req2 = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(3, 1, 0));
        req2.nonce = [0x4C; 16];
        req2.rsa_signature = f.rsa.sign_pkcs1v15_sha256(&req2.body_bytes()).unwrap();
        let resp2 = cached.issue_license("netflix", "title-001", pol, &token, &req2).unwrap();
        assert_ne!(resp2, baseline);
        assert_eq!(resp2.key_entries.len(), baseline.key_entries.len());
        assert_eq!(cached.response_cache_stats().unwrap().hits, 2);
    }

    #[test]
    fn response_cache_expires_with_the_license_duration() {
        use wideleak_faults::VirtualClock;
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let clock = Arc::new(VirtualClock::new());
        let cached = LicenseServer::builder(f.license.trust.clone(), f.accounts.clone())
            .seed(7)
            .response_cache(clock.clone())
            .build();
        let pol = policy(AudioProtection::Clear, false);
        let req = signed_request(&f, vec![], SecurityLevel::L3, CdmVersion::new(3, 1, 0));
        cached.issue_license("netflix", "title-001", pol, &token, &req).unwrap();
        clock.advance_ms(u64::from(DEFAULT_LICENSE_DURATION_SECS) * 1000);
        cached.issue_license("netflix", "title-001", pol, &token, &req).unwrap();
        let stats = cached.response_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (0, 2), "TTL forced a recompute");
    }

    #[test]
    fn response_cache_never_caches_errors() {
        use wideleak_faults::VirtualClock;
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let cached = LicenseServer::builder(f.license.trust.clone(), f.accounts.clone())
            .seed(7)
            .response_cache(Arc::new(VirtualClock::new()))
            .build();
        let pol = policy(AudioProtection::Clear, false);
        let req = signed_request(
            &f,
            vec![KeyId([0xEE; 16])],
            SecurityLevel::L3,
            CdmVersion::new(3, 1, 0),
        );
        for _ in 0..2 {
            assert!(matches!(
                cached.issue_license("netflix", "title-001", pol, &token, &req),
                Err(OttError::NotFound { .. })
            ));
        }
        let stats = cached.response_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (0, 2), "failed lookups never populate");
    }

    #[test]
    fn hd_keys_withheld_from_l3_even_when_requested() {
        let f = fixture();
        let token = f.accounts.subscribe("netflix", "alice");
        let hd_label = "netflix/title-001/video-1080";
        let hd_kid = kid_from_label(hd_label);
        let req = signed_request(&f, vec![hd_kid], SecurityLevel::L3, CdmVersion::new(3, 1, 0));
        // The only requested key needs L1 → nothing issuable.
        assert!(matches!(
            f.license.issue_license(
                "netflix",
                "title-001",
                policy(AudioProtection::Clear, false),
                &token,
                &req,
            ),
            Err(OttError::NotFound { .. })
        ));
    }
}
