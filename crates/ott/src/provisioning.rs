//! The provisioning server: installs Device RSA Keys.
//!
//! Verifies the CMAC on each [`ProvisioningRequest`] against the trust
//! authority's device-key records, optionally applies the revocation
//! policy (the paper's Q4 axis: only Disney+, HBO Max and Starz ask for
//! enforcement), generates a fresh RSA key pair for the device, and
//! returns it wrapped under keybox-derived keys.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use wideleak_cdm::ladder::derive_provisioning_keys;
use wideleak_cdm::messages::{ProvisioningRequest, ProvisioningResponse};
use wideleak_cdm::provisioning::{serialize_rsa_key, wrap_serialized_rsa_key};
use wideleak_crypto::cmac::aes_cmac_with_key;
use wideleak_crypto::ct::ct_eq;
use wideleak_crypto::rng::{random_array, seeded_rng};
use wideleak_crypto::rsa::RsaPrivateKey;
use wideleak_device::catalog::CdmVersion;

use crate::cache::{ProvisionCertCache, ProvisionCertEntry};
use crate::trust::TrustAuthority;
use crate::OttError;

/// The Widevine revocation policy: CDM versions below the floor are
/// revoked (no longer receiving security updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevocationPolicy {
    /// Minimum still-supported CDM version.
    pub min_cdm_version: CdmVersion,
}

impl Default for RevocationPolicy {
    fn default() -> Self {
        // The study's discontinued Nexus 5 runs CDM 3.1.0; anything before
        // the Android-11-era release train is revoked.
        RevocationPolicy { min_cdm_version: CdmVersion::new(14, 0, 0) }
    }
}

impl RevocationPolicy {
    /// Whether a version is revoked under this policy.
    pub fn is_revoked(&self, version: CdmVersion) -> bool {
        version < self.min_cdm_version
    }
}

/// The provisioning server.
pub struct ProvisioningServer {
    trust: Arc<TrustAuthority>,
    policy: RevocationPolicy,
    rsa_bits: usize,
    seed: u64,
    /// Cache of generated device keys so re-provisioning is stable (and
    /// tests don't pay RSA keygen twice).
    issued: Mutex<HashMap<Vec<u8>, RsaPrivateKey>>,
    /// Optional provisioning-certificate cache of the nonce-independent
    /// wrap material (derived keys + serialized RSA blob) per device
    /// identity. `None` runs every request through the full path.
    cert_cache: Option<Arc<ProvisionCertCache>>,
}

impl std::fmt::Debug for ProvisioningServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ProvisioningServer(rsa: {} bits, floor: {})",
            self.rsa_bits, self.policy.min_cdm_version
        )
    }
}

/// Tunable provisioning-server knobs; [`Default`] is the production
/// shape (2048-bit RSA, default revocation floor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisioningServerConfig {
    /// Revocation floor applied to apps that opt into enforcement.
    pub policy: RevocationPolicy,
    /// Size of issued Device RSA Keys (tests shrink this for speed).
    pub rsa_bits: usize,
    /// Seed for key generation and response IVs.
    pub seed: u64,
}

impl Default for ProvisioningServerConfig {
    fn default() -> Self {
        ProvisioningServerConfig { policy: RevocationPolicy::default(), rsa_bits: 2048, seed: 0 }
    }
}

/// Builds a [`ProvisioningServer`]. Obtained from
/// [`ProvisioningServer::builder`].
pub struct ProvisioningServerBuilder {
    trust: Arc<TrustAuthority>,
    config: ProvisioningServerConfig,
    cert_cache: Option<Arc<ProvisionCertCache>>,
}

impl ProvisioningServerBuilder {
    /// Replaces the whole configuration at once.
    #[must_use]
    pub fn config(mut self, config: ProvisioningServerConfig) -> Self {
        self.config = config;
        self
    }

    /// The revocation floor.
    #[must_use]
    pub fn policy(mut self, policy: RevocationPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// The issued RSA key size.
    #[must_use]
    pub fn rsa_bits(mut self, rsa_bits: usize) -> Self {
        self.config.rsa_bits = rsa_bits;
        self
    }

    /// The keying seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Attaches a provisioning-certificate cache (shared so the ecosystem
    /// can invalidate entries on keybox rotation).
    #[must_use]
    pub fn cert_cache(mut self, cache: Arc<ProvisionCertCache>) -> Self {
        self.cert_cache = Some(cache);
        self
    }

    /// Builds the server.
    #[must_use]
    pub fn build(self) -> ProvisioningServer {
        ProvisioningServer {
            trust: self.trust,
            policy: self.config.policy,
            rsa_bits: self.config.rsa_bits,
            seed: self.config.seed,
            issued: Mutex::new(HashMap::new()),
            cert_cache: self.cert_cache,
        }
    }
}

impl ProvisioningServer {
    /// Starts configuring a provisioning server for a trust authority.
    #[must_use]
    pub fn builder(trust: Arc<TrustAuthority>) -> ProvisioningServerBuilder {
        ProvisioningServerBuilder {
            trust,
            config: ProvisioningServerConfig::default(),
            cert_cache: None,
        }
    }

    /// The active revocation policy.
    pub fn policy(&self) -> RevocationPolicy {
        self.policy
    }

    /// Certificate-cache counters, when a cache is attached.
    pub fn cert_cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.cert_cache.as_ref().map(|c| c.stats())
    }

    /// Handles one provisioning request.
    ///
    /// `enforce_revocation` is the *app's* choice (Q4): when false, the
    /// server provisions even revoked devices — the widespread practice
    /// the paper criticizes.
    ///
    /// # Errors
    ///
    /// Returns [`OttError::Unauthorized`] for bad signatures or unknown
    /// devices and [`OttError::DeviceRevoked`] under enforcement.
    pub fn provision(
        &self,
        request: &ProvisioningRequest,
        enforce_revocation: bool,
    ) -> Result<ProvisioningResponse, OttError> {
        let device_key = self.trust.device_key(&request.device_id).ok_or(OttError::Unauthorized)?;
        let expected = aes_cmac_with_key(&device_key, &request.body_bytes());
        if !ct_eq(&expected, &request.signature) {
            return Err(OttError::Unauthorized);
        }
        if enforce_revocation && self.policy.is_revoked(request.cdm_version) {
            return Err(OttError::DeviceRevoked { cdm_version: request.cdm_version.to_string() });
        }

        // Fast path: the derived wrap keys and serialized RSA blob are
        // nonce-independent, so a cached identity skips key derivation
        // and blob serialization; IV, ciphertext and signature are still
        // recomputed per request, keeping responses byte-identical to the
        // uncached path. The entry's device key is cross-checked so a
        // rotated keybox can never be served stale material.
        let cached = self
            .cert_cache
            .as_ref()
            .and_then(|cache| cache.lookup(&request.device_id, &device_key));
        let (enc_key, mac_key, blob, public_key) = match cached {
            Some(entry) => (entry.enc_key, entry.mac_key, entry.blob, entry.public_key),
            None => {
                let key = {
                    let mut issued = self.issued.lock();
                    issued
                        .entry(request.device_id.clone())
                        .or_insert_with(|| {
                            let mut rng_seed = self.seed;
                            for b in &request.device_id {
                                rng_seed = rng_seed.rotate_left(5) ^ *b as u64;
                            }
                            RsaPrivateKey::generate(&mut seeded_rng(rng_seed), self.rsa_bits)
                        })
                        .clone()
                };
                let (enc_key, mac_key) = derive_provisioning_keys(&device_key, &request.device_id);
                let blob = serialize_rsa_key(&key);
                let public_key = key.public_key().clone();
                if let Some(cache) = &self.cert_cache {
                    cache.store(
                        request.device_id.clone(),
                        ProvisionCertEntry {
                            device_key,
                            enc_key,
                            mac_key,
                            blob: blob.clone(),
                            public_key: public_key.clone(),
                        },
                    );
                }
                (enc_key, mac_key, blob, public_key)
            }
        };
        self.trust.record_rsa_key(&request.device_id, public_key);
        self.trust.record_attested_level(&request.device_id, request.security_level);

        let mut iv_rng = seeded_rng(
            self.seed ^ u64::from_be_bytes(request.nonce[..8].try_into().expect("8 bytes")),
        );
        let iv: [u8; 16] = random_array(&mut iv_rng);
        Ok(wrap_serialized_rsa_key(&enc_key, &mac_key, request.nonce, iv, &blob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_cdm::provisioning::unwrap_rsa_key;
    use wideleak_device::catalog::SecurityLevel;

    fn setup() -> (Arc<TrustAuthority>, ProvisioningServer) {
        let trust = Arc::new(TrustAuthority::new(11));
        let server = ProvisioningServer::builder(trust.clone()).rsa_bits(512).seed(900).build();
        (trust, server)
    }

    fn request(trust: &TrustAuthority, device: &str, version: CdmVersion) -> ProvisioningRequest {
        let kb = trust.issue_keybox(device);
        let mut req = ProvisioningRequest {
            device_id: kb.device_id().to_vec(),
            cdm_version: version,
            security_level: SecurityLevel::L3,
            nonce: [9; 16],
            signature: [0; 16],
        };
        req.signature = aes_cmac_with_key(kb.device_key(), &req.body_bytes());
        req
    }

    #[test]
    fn provisions_valid_devices() {
        let (trust, server) = setup();
        let req = request(&trust, "modern-phone", CdmVersion::new(16, 0, 0));
        let resp = server.provision(&req, true).unwrap();
        // The device can unwrap the response with its keybox material.
        let kb = trust.issue_keybox("modern-phone");
        let key = unwrap_rsa_key(kb.device_key(), kb.device_id(), Some([9; 16]), &resp).unwrap();
        assert_eq!(trust.rsa_key(kb.device_id()).unwrap(), *key.public_key());
    }

    #[test]
    fn rejects_unknown_devices() {
        let (_, server) = setup();
        let other_trust = TrustAuthority::new(999);
        let req = request(&other_trust, "alien-phone", CdmVersion::new(16, 0, 0));
        assert_eq!(server.provision(&req, false), Err(OttError::Unauthorized));
    }

    #[test]
    fn rejects_bad_signatures() {
        let (trust, server) = setup();
        let mut req = request(&trust, "phone", CdmVersion::new(16, 0, 0));
        req.signature[0] ^= 1;
        assert_eq!(server.provision(&req, false), Err(OttError::Unauthorized));
    }

    #[test]
    fn revocation_only_bites_under_enforcement() {
        let (trust, server) = setup();
        let req = request(&trust, "nexus5", CdmVersion::new(3, 1, 0));
        // Enforcing app (Disney+-like): refused.
        assert!(matches!(server.provision(&req, true), Err(OttError::DeviceRevoked { .. })));
        // Lenient app (Netflix-like): provisioned anyway.
        assert!(server.provision(&req, false).is_ok());
    }

    #[test]
    fn reprovisioning_returns_same_key() {
        let (trust, server) = setup();
        let req = request(&trust, "phone", CdmVersion::new(16, 0, 0));
        let kb = trust.issue_keybox("phone");
        let r1 = server.provision(&req, false).unwrap();
        let r2 = server.provision(&req, false).unwrap();
        let k1 = unwrap_rsa_key(kb.device_key(), kb.device_id(), None, &r1).unwrap();
        let k2 = unwrap_rsa_key(kb.device_key(), kb.device_id(), None, &r2).unwrap();
        assert_eq!(k1.public_key(), k2.public_key());
    }

    #[test]
    fn cert_cache_keeps_responses_byte_identical() {
        let trust = Arc::new(TrustAuthority::new(11));
        let plain = ProvisioningServer::builder(trust.clone()).rsa_bits(512).seed(900).build();
        let cache = Arc::new(ProvisionCertCache::new());
        let cached = ProvisioningServer::builder(trust.clone())
            .rsa_bits(512)
            .seed(900)
            .cert_cache(cache.clone())
            .build();
        let req = request(&trust, "phone", CdmVersion::new(16, 0, 0));
        let baseline = plain.provision(&req, false).unwrap();
        // Miss then hit: both must match the uncached server bit for bit.
        assert_eq!(cached.provision(&req, false).unwrap(), baseline);
        assert_eq!(cached.provision(&req, false).unwrap(), baseline);
        assert_eq!(cached.cert_cache_stats().unwrap().hits, 1);
        assert_eq!(cached.cert_cache_stats().unwrap().misses, 1);
        // A different nonce still round-trips through keybox material.
        let mut req2 = request(&trust, "phone", CdmVersion::new(16, 0, 0));
        req2.nonce = [0xB7; 16];
        req2.signature =
            aes_cmac_with_key(&trust.device_key(&req2.device_id).unwrap(), &req2.body_bytes());
        let resp2 = cached.provision(&req2, false).unwrap();
        assert_ne!(resp2, baseline, "nonce-dependent bytes differ");
        let kb = trust.issue_keybox("phone");
        let k = unwrap_rsa_key(kb.device_key(), kb.device_id(), Some([0xB7; 16]), &resp2).unwrap();
        assert_eq!(trust.rsa_key(kb.device_id()).unwrap(), *k.public_key());
    }

    #[test]
    fn cert_cache_refuses_stale_entries_after_keybox_rotation() {
        let trust = Arc::new(TrustAuthority::new(11));
        let cache = Arc::new(ProvisionCertCache::new());
        let server = ProvisioningServer::builder(trust.clone())
            .rsa_bits(512)
            .seed(900)
            .cert_cache(cache.clone())
            .build();
        let req = request(&trust, "phone", CdmVersion::new(16, 0, 0));
        server.provision(&req, false).unwrap();
        assert_eq!(cache.len(), 1);

        // Rotate the keybox: the device key changes, the identity stays.
        let kb = trust.rotate_keybox("phone");
        let mut req2 = ProvisioningRequest {
            device_id: kb.device_id().to_vec(),
            cdm_version: CdmVersion::new(16, 0, 0),
            security_level: wideleak_device::catalog::SecurityLevel::L3,
            nonce: [9; 16],
            signature: [0; 16],
        };
        req2.signature = aes_cmac_with_key(kb.device_key(), &req2.body_bytes());
        // Even with the stale entry still resident (no invalidation), the
        // device-key cross-check forces the full path, and the response
        // unwraps under the *new* keybox.
        let resp = server.provision(&req2, false).unwrap();
        let key = unwrap_rsa_key(kb.device_key(), kb.device_id(), Some([9; 16]), &resp).unwrap();
        assert_eq!(trust.rsa_key(kb.device_id()).unwrap(), *key.public_key());
        cache.invalidate(kb.device_id());
        assert!(cache.is_empty());
    }

    #[test]
    fn default_policy_revokes_the_nexus_5() {
        let policy = RevocationPolicy::default();
        assert!(policy.is_revoked(CdmVersion::new(3, 1, 0)));
        assert!(!policy.is_revoked(CdmVersion::new(16, 0, 0)));
        assert!(!policy.is_revoked(policy.min_cdm_version));
    }
}
