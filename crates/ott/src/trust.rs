//! The trust authority: factory keybox issuance records.
//!
//! In the real ecosystem Google provisions manufacturers with keyboxes and
//! therefore knows every `(device id, device key)` pair; the provisioning
//! and license servers authenticate devices against these records. The
//! simulator's [`TrustAuthority`] plays that role: it issues keyboxes for
//! devices and lets the backend servers look device keys and provisioned
//! RSA public keys up.

use std::collections::HashMap;

use parking_lot::RwLock;
use wideleak_cdm::keybox::Keybox;
use wideleak_crypto::rng::{random_array, seeded_rng};
use wideleak_crypto::rsa::RsaPublicKey;
use wideleak_device::catalog::SecurityLevel;

/// Factory and provisioning records shared by the backend servers.
pub struct TrustAuthority {
    device_keys: RwLock<HashMap<Vec<u8>, [u8; 16]>>,
    rsa_keys: RwLock<HashMap<Vec<u8>, RsaPublicKey>>,
    attested_levels: RwLock<HashMap<Vec<u8>, SecurityLevel>>,
    /// Keybox generation per device name: bumped by
    /// [`rotate_keybox`](Self::rotate_keybox), folded into key
    /// derivation so a rotated device gets a fresh device key under the
    /// same identity.
    generations: RwLock<HashMap<String, u64>>,
    seed: u64,
}

impl std::fmt::Debug for TrustAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TrustAuthority(devices: {}, provisioned: {})",
            self.device_keys.read().len(),
            self.rsa_keys.read().len()
        )
    }
}

impl TrustAuthority {
    /// Creates an authority whose device keys derive from `seed`.
    pub fn new(seed: u64) -> Self {
        TrustAuthority {
            device_keys: RwLock::new(HashMap::new()),
            rsa_keys: RwLock::new(HashMap::new()),
            attested_levels: RwLock::new(HashMap::new()),
            generations: RwLock::new(HashMap::new()),
            seed,
        }
    }

    /// Issues (or re-issues, idempotently within a keybox generation) a
    /// keybox for a device.
    pub fn issue_keybox(&self, device_name: &str) -> Keybox {
        let generation = self.generations.read().get(device_name).copied().unwrap_or(0);
        self.issue_keybox_at(device_name, generation)
    }

    /// Rotates a device's keybox: the device identity stays, the device
    /// key changes. Existing provisioning records remain (the Device RSA
    /// Key is independent of the keybox); any cache keyed on the old
    /// keybox material must be invalidated by the caller.
    pub fn rotate_keybox(&self, device_name: &str) -> Keybox {
        let generation = {
            let mut generations = self.generations.write();
            let g = generations.entry(device_name.to_owned()).or_insert(0);
            *g += 1;
            *g
        };
        self.issue_keybox_at(device_name, generation)
    }

    fn issue_keybox_at(&self, device_name: &str, generation: u64) -> Keybox {
        let mut id_seed = self.seed;
        for b in device_name.bytes() {
            id_seed = id_seed.rotate_left(9) ^ b as u64;
        }
        id_seed ^= generation.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let device_key: [u8; 16] = random_array(&mut seeded_rng(id_seed));
        let keybox = Keybox::issue(device_name.as_bytes(), &device_key);
        self.device_keys.write().insert(keybox.device_id().to_vec(), device_key);
        keybox
    }

    /// Looks up the device key for a device id (provisioning server use).
    pub fn device_key(&self, device_id: &[u8]) -> Option<[u8; 16]> {
        self.device_keys.read().get(device_id).copied()
    }

    /// Records the RSA public key provisioned onto a device.
    pub fn record_rsa_key(&self, device_id: &[u8], key: RsaPublicKey) {
        self.rsa_keys.write().insert(device_id.to_vec(), key);
    }

    /// Looks up a device's provisioned RSA public key (license server use).
    pub fn rsa_key(&self, device_id: &[u8]) -> Option<RsaPublicKey> {
        self.rsa_keys.read().get(device_id).cloned()
    }

    /// Records the security level a device attested (keybox-authenticated)
    /// at provisioning time. The license server uses this to detect
    /// clients claiming a better level than their hardware has — the
    /// "strong verification" the paper notes web browsers lack (§V-C).
    pub fn record_attested_level(&self, device_id: &[u8], level: SecurityLevel) {
        self.attested_levels.write().insert(device_id.to_vec(), level);
    }

    /// The level a device attested at provisioning.
    pub fn attested_level(&self, device_id: &[u8]) -> Option<SecurityLevel> {
        self.attested_levels.read().get(device_id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issuance_is_deterministic_per_device() {
        let a = TrustAuthority::new(1);
        let kb1 = a.issue_keybox("nexus-5-unit-1");
        let kb2 = a.issue_keybox("nexus-5-unit-1");
        assert_eq!(kb1.to_bytes(), kb2.to_bytes());
        let kb3 = a.issue_keybox("nexus-5-unit-2");
        assert_ne!(kb1.to_bytes(), kb3.to_bytes());
    }

    #[test]
    fn seeds_separate_authorities() {
        let kb_a = TrustAuthority::new(1).issue_keybox("device");
        let kb_b = TrustAuthority::new(2).issue_keybox("device");
        assert_ne!(kb_a.device_key(), kb_b.device_key());
    }

    #[test]
    fn rotation_changes_the_key_but_not_the_identity() {
        let a = TrustAuthority::new(1);
        let kb1 = a.issue_keybox("phone");
        let kb2 = a.rotate_keybox("phone");
        assert_eq!(kb1.device_id(), kb2.device_id());
        assert_ne!(kb1.device_key(), kb2.device_key());
        // Lookups now resolve to the rotated key, and re-issue is
        // idempotent within the new generation.
        assert_eq!(a.device_key(kb2.device_id()), Some(*kb2.device_key()));
        assert_eq!(a.issue_keybox("phone").to_bytes(), kb2.to_bytes());
    }

    #[test]
    fn device_key_lookup() {
        let a = TrustAuthority::new(3);
        let kb = a.issue_keybox("phone");
        assert_eq!(a.device_key(kb.device_id()), Some(*kb.device_key()));
        assert_eq!(a.device_key(b"unknown-device-id"), None);
    }

    #[test]
    fn rsa_records() {
        use wideleak_bigint::BigUint;
        let a = TrustAuthority::new(4);
        let kb = a.issue_keybox("phone");
        assert!(a.rsa_key(kb.device_id()).is_none());
        let key = RsaPublicKey::new(BigUint::from_u64(3233), BigUint::from_u64(17));
        a.record_rsa_key(kb.device_id(), key.clone());
        assert_eq!(a.rsa_key(kb.device_id()), Some(key));
    }
}
