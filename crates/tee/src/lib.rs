//! A TrustZone-style Trusted Execution Environment simulator.
//!
//! Widevine L1 runs its CDM core inside a TEE trustlet: key material and
//! cryptographic operations live in the secure world, and the normal world
//! (the Android media server process) only exchanges command buffers
//! through a world-switch interface. This crate models exactly the
//! security boundary that matters for the paper's findings:
//!
//! - the normal world invokes trustlets only through [`SecureWorld::invoke`]
//!   (the SMC stand-in), passing opaque byte buffers;
//! - trustlet state and [`SecureStorage`] contents are private to this
//!   crate and are **never** mapped into the simulated process memory that
//!   `wideleak-device` exposes to memory scans — which is why the paper's
//!   keybox-recovery attack works on L3 (software CDM, normal-world
//!   memory) but not on L1.
//!
//! # Examples
//!
//! ```
//! use wideleak_tee::{SecureWorld, Trustlet, TeeError};
//!
//! struct Echo;
//! impl Trustlet for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn invoke(&mut self, command: u32, input: &[u8], _storage: &mut wideleak_tee::SecureStorage)
//!         -> Result<Vec<u8>, TeeError>
//!     {
//!         let mut out = command.to_be_bytes().to_vec();
//!         out.extend_from_slice(input);
//!         Ok(out)
//!     }
//! }
//!
//! let mut world = SecureWorld::new();
//! world.load_trustlet(Box::new(Echo));
//! let reply = world.invoke("echo", 7, b"hi").unwrap();
//! assert_eq!(&reply[4..], b"hi");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

/// Errors surfaced to the normal world by the secure monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// No trustlet with the requested name is loaded.
    TrustletNotFound {
        /// The requested trustlet name.
        name: String,
    },
    /// The trustlet rejected the command code.
    BadCommand {
        /// The rejected command.
        command: u32,
    },
    /// The trustlet rejected its input buffer.
    BadParameters {
        /// Human-readable description.
        reason: &'static str,
    },
    /// The trustlet's internal state forbids the operation (e.g. keybox
    /// not installed yet).
    AccessDenied {
        /// Human-readable description.
        reason: &'static str,
    },
    /// A secure-storage slot was missing.
    StorageMiss {
        /// The slot that was requested.
        slot: String,
    },
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::TrustletNotFound { name } => write!(f, "trustlet {name:?} not loaded"),
            TeeError::BadCommand { command } => write!(f, "trustlet rejected command {command}"),
            TeeError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
            TeeError::AccessDenied { reason } => write!(f, "access denied: {reason}"),
            TeeError::StorageMiss { slot } => write!(f, "secure storage slot {slot:?} empty"),
        }
    }
}

impl std::error::Error for TeeError {}

/// Per-trustlet secure storage: a key-value store that survives trustlet
/// invocations but is unreachable from the normal world.
#[derive(Default)]
pub struct SecureStorage {
    slots: HashMap<String, Vec<u8>>,
}

impl fmt::Debug for SecureStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Slot *names* are not secret; contents are.
        let mut names: Vec<&str> = self.slots.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "SecureStorage(slots: {names:?}, contents redacted)")
    }
}

impl SecureStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a value under `slot`, replacing any previous value.
    pub fn put(&mut self, slot: impl Into<String>, value: Vec<u8>) {
        self.slots.insert(slot.into(), value);
    }

    /// Reads a value.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::StorageMiss`] when the slot is empty.
    pub fn get(&self, slot: &str) -> Result<&[u8], TeeError> {
        self.slots
            .get(slot)
            .map(Vec::as_slice)
            .ok_or_else(|| TeeError::StorageMiss { slot: slot.to_owned() })
    }

    /// Whether a slot is populated.
    pub fn contains(&self, slot: &str) -> bool {
        self.slots.contains_key(slot)
    }

    /// Deletes a slot, returning whether it existed.
    pub fn delete(&mut self, slot: &str) -> bool {
        self.slots.remove(slot).is_some()
    }
}

/// A trusted application running in the secure world.
///
/// Implementations hold their own state; persistent secrets go through the
/// [`SecureStorage`] passed to each invocation.
pub trait Trustlet: Send {
    /// Stable trustlet name used by the normal world to address it.
    fn name(&self) -> &str;

    /// Handles one command invocation.
    ///
    /// # Errors
    ///
    /// Implementations return [`TeeError`] values which the secure monitor
    /// relays verbatim to the normal world.
    fn invoke(
        &mut self,
        command: u32,
        input: &[u8],
        storage: &mut SecureStorage,
    ) -> Result<Vec<u8>, TeeError>;
}

struct LoadedTrustlet {
    trustlet: Box<dyn Trustlet>,
    storage: SecureStorage,
}

/// The secure world: trustlet registry plus the world-switch entry point.
///
/// Interior mutability (a [`Mutex`]) mirrors the fact that the secure
/// monitor serializes SMC calls from all normal-world cores.
pub struct SecureWorld {
    trustlets: Mutex<HashMap<String, LoadedTrustlet>>,
    /// Count of world switches performed, for the latency ablation bench.
    switches: Mutex<u64>,
}

impl fmt::Debug for SecureWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.trustlets.lock().keys().cloned().collect();
        write!(f, "SecureWorld(trustlets: {names:?})")
    }
}

impl Default for SecureWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureWorld {
    /// Boots an empty secure world.
    pub fn new() -> Self {
        SecureWorld { trustlets: Mutex::new(HashMap::new()), switches: Mutex::new(0) }
    }

    /// Loads (or replaces) a trustlet.
    pub fn load_trustlet(&self, trustlet: Box<dyn Trustlet>) {
        let name = trustlet.name().to_owned();
        self.trustlets
            .lock()
            .insert(name, LoadedTrustlet { trustlet, storage: SecureStorage::new() });
    }

    /// Whether a trustlet is loaded.
    pub fn has_trustlet(&self, name: &str) -> bool {
        self.trustlets.lock().contains_key(name)
    }

    /// The world-switch entry point: routes `command`+`input` to the named
    /// trustlet and returns its reply buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::TrustletNotFound`] or whatever the trustlet
    /// itself reports.
    pub fn invoke(&self, trustlet: &str, command: u32, input: &[u8]) -> Result<Vec<u8>, TeeError> {
        *self.switches.lock() += 1;
        let mut reg = self.trustlets.lock();
        let loaded = reg
            .get_mut(trustlet)
            .ok_or_else(|| TeeError::TrustletNotFound { name: trustlet.to_owned() })?;
        loaded.trustlet.invoke(command, input, &mut loaded.storage)
    }

    /// Number of world switches performed so far.
    pub fn switch_count(&self) -> u64 {
        *self.switches.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trustlet that stores and retrieves a secret via secure storage.
    struct Vault;

    const CMD_PUT: u32 = 1;
    const CMD_GET: u32 = 2;

    impl Trustlet for Vault {
        fn name(&self) -> &str {
            "vault"
        }

        fn invoke(
            &mut self,
            command: u32,
            input: &[u8],
            storage: &mut SecureStorage,
        ) -> Result<Vec<u8>, TeeError> {
            match command {
                CMD_PUT => {
                    storage.put("secret", input.to_vec());
                    Ok(Vec::new())
                }
                CMD_GET => Ok(storage.get("secret")?.to_vec()),
                other => Err(TeeError::BadCommand { command: other }),
            }
        }
    }

    #[test]
    fn invoke_routes_to_trustlet() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        assert!(world.has_trustlet("vault"));
        world.invoke("vault", CMD_PUT, b"keybox").unwrap();
        assert_eq!(world.invoke("vault", CMD_GET, &[]).unwrap(), b"keybox");
    }

    #[test]
    fn missing_trustlet_reported() {
        let world = SecureWorld::new();
        assert_eq!(
            world.invoke("widevine", 1, &[]),
            Err(TeeError::TrustletNotFound { name: "widevine".into() })
        );
    }

    #[test]
    fn bad_command_propagates() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        assert_eq!(world.invoke("vault", 99, &[]), Err(TeeError::BadCommand { command: 99 }));
    }

    #[test]
    fn storage_miss_propagates() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        assert_eq!(
            world.invoke("vault", CMD_GET, &[]),
            Err(TeeError::StorageMiss { slot: "secret".into() })
        );
    }

    #[test]
    fn storage_is_per_trustlet() {
        struct Vault2;
        impl Trustlet for Vault2 {
            fn name(&self) -> &str {
                "vault2"
            }
            fn invoke(
                &mut self,
                _c: u32,
                _i: &[u8],
                storage: &mut SecureStorage,
            ) -> Result<Vec<u8>, TeeError> {
                Ok(storage.get("secret")?.to_vec())
            }
        }
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        world.load_trustlet(Box::new(Vault2));
        world.invoke("vault", CMD_PUT, b"x").unwrap();
        // vault2 cannot see vault's storage.
        assert!(matches!(world.invoke("vault2", 0, &[]), Err(TeeError::StorageMiss { .. })));
    }

    #[test]
    fn reloading_a_trustlet_resets_storage() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        world.invoke("vault", CMD_PUT, b"old").unwrap();
        world.load_trustlet(Box::new(Vault));
        assert!(world.invoke("vault", CMD_GET, &[]).is_err());
    }

    #[test]
    fn switch_counter_increments() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        assert_eq!(world.switch_count(), 0);
        world.invoke("vault", CMD_PUT, b"x").unwrap();
        let _ = world.invoke("nope", 0, &[]);
        assert_eq!(world.switch_count(), 2, "failed switches still count");
    }

    #[test]
    fn secure_storage_basics() {
        let mut s = SecureStorage::new();
        assert!(!s.contains("a"));
        s.put("a", vec![1, 2]);
        assert!(s.contains("a"));
        assert_eq!(s.get("a").unwrap(), &[1, 2]);
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
    }

    #[test]
    fn debug_redacts_contents() {
        let mut s = SecureStorage::new();
        s.put("device_key", vec![0xAA; 16]);
        let d = format!("{s:?}");
        assert!(d.contains("device_key"), "slot names visible");
        assert!(!d.contains("170") && !d.to_lowercase().contains("aa"), "contents hidden: {d}");
    }

    #[test]
    fn world_debug_lists_trustlets() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(Vault));
        assert!(format!("{world:?}").contains("vault"));
    }
}
