//! Bounded event ring buffer — a "flight recorder" keeping the last N
//! discrete events so a failed run can be reconstructed after the fact
//! without unbounded memory growth.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One discrete, timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the collector epoch.
    pub ts_ns: u64,
    /// Severity or category label (`"info"`, `"error"`, ...).
    pub level: &'static str,
    /// Free-form message.
    pub message: String,
}

/// A bounded ring of the most recent events.
pub struct EventRing {
    inner: Mutex<RingState>,
}

struct RingState {
    buf: VecDeque<Event>,
    capacity: usize,
    /// Total events ever pushed, including evicted ones.
    pushed: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            inner: Mutex::new(RingState {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                pushed: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut s = self.inner.lock();
        if s.buf.len() == s.capacity {
            s.buf.pop_front();
        }
        s.buf.push_back(event);
        s.pushed += 1;
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn drain_ordered(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Total events ever pushed (retained + evicted).
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Empties the ring.
    pub fn clear(&self) {
        let mut s = self.inner.lock();
        s.buf.clear();
        s.pushed = 0;
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> Event {
        Event { ts_ns: i, level: "info", message: format!("e{i}") }
    }

    #[test]
    fn ring_keeps_only_last_n() {
        let r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        let kept: Vec<u64> = r.drain_ordered().iter().map(|e| e.ts_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(r.total_pushed(), 5);
    }

    #[test]
    fn clear_resets_everything() {
        let r = EventRing::new(2);
        r.push(ev(1));
        r.clear();
        assert!(r.drain_ordered().is_empty());
        assert_eq!(r.total_pushed(), 0);
    }
}
