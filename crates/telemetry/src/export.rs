//! Exporters: render a [`Snapshot`](crate::Snapshot) as JSONL (one
//! JSON object per line, machine-consumable) or as a human-readable
//! summary table for the CLI's `stats` output.
//!
//! The JSON encoder is hand-rolled — the workspace has no serde — and
//! emits only the small, flat shapes below, with full string escaping.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::FieldValue;
use crate::{HistogramSummary, Snapshot};

/// Escapes `s` into `out` as JSON string *contents* (no quotes).
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_value(s: &str, out: &mut String) {
    out.push('"');
    escape_json(s, out);
    out.push('"');
}

/// Writes `s` as a quoted, escaped JSON string into `out`. Shared
/// with the trace serializer so both sinks escape identically.
pub(crate) fn push_json_str(s: &str, out: &mut String) {
    push_str_value(s, out);
}

fn push_field_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => push_str_value(s, out),
    }
}

/// Renders a snapshot as JSONL: a `meta` line, then one line per span,
/// counter, histogram and event. Every line parses as a standalone
/// JSON object with a `"type"` discriminator.
#[must_use]
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"spans\":{},\"counters\":{},\"gauges\":{},\"histograms\":{},\"events\":{},\"events_total\":{}}}",
        snapshot.spans.len(),
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        snapshot.events.len(),
        snapshot.events_total,
    );
    for s in &snapshot.spans {
        out.push_str("{\"type\":\"span\",\"id\":");
        let _ = write!(out, "{}", s.id);
        out.push_str(",\"parent\":");
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        push_str_value(s.name, &mut out);
        let _ = write!(out, ",\"start_ns\":{},\"duration_ns\":{}", s.start_ns, s.duration_ns);
        if !s.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in s.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_value(k, &mut out);
                out.push(':');
                push_field_value(v, &mut out);
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    for (name, value) in &snapshot.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        push_str_value(name, &mut out);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (name, value) in &snapshot.gauges {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        push_str_value(name, &mut out);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (name, h) in &snapshot.histograms {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        push_str_value(name, &mut out);
        let _ = writeln!(
            out,
            ",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            h.count, h.sum_ns, h.min_ns, h.p50_ns, h.p90_ns, h.p95_ns, h.p99_ns, h.max_ns,
        );
    }
    for e in &snapshot.events {
        let _ = write!(out, "{{\"type\":\"event\",\"ts_ns\":{},\"level\":", e.ts_ns);
        push_str_value(e.level, &mut out);
        out.push_str(",\"message\":");
        push_str_value(&e.message, &mut out);
        out.push_str("}\n");
    }
    out
}

/// Formats nanoseconds with an adaptive unit for the summary tables.
#[must_use]
pub fn humanize_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn histogram_row(name: &str, h: &HistogramSummary, out: &mut String) {
    let _ = writeln!(
        out,
        "  {:<44} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        name,
        h.count,
        humanize_ns(h.p50_ns),
        humanize_ns(h.p90_ns),
        humanize_ns(h.p95_ns),
        humanize_ns(h.p99_ns),
        humanize_ns(h.max_ns),
    );
}

/// Renders a human-readable run summary: counters, latency
/// percentiles, a per-name span rollup and recent events.
#[must_use]
pub fn summary_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");

    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<52} {value:>10}");
        }
    }

    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<52} {value:>10}");
        }
    }

    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "latency:\n  {:<44} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "count", "p50", "p90", "p95", "p99", "max"
        );
        for (name, h) in &snapshot.histograms {
            histogram_row(name, h, &mut out);
        }
    }

    if !snapshot.spans.is_empty() {
        // Roll spans up by name: count and total self time.
        let mut rollup: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &snapshot.spans {
            let e = rollup.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.duration_ns;
        }
        let _ = writeln!(out, "spans:\n  {:<44} {:>8} {:>10}", "name", "count", "total");
        for (name, (count, total_ns)) in rollup {
            let _ = writeln!(out, "  {:<44} {:>8} {:>10}", name, count, humanize_ns(total_ns));
        }
    }

    if !snapshot.events.is_empty() {
        let _ =
            writeln!(out, "events (last {} of {}):", snapshot.events.len(), snapshot.events_total);
        for e in &snapshot.events {
            let _ = writeln!(out, "  [{:>10}] {:<5} {}", humanize_ns(e.ts_ns), e.level, e.message);
        }
    }
    out
}

/// A run re-read from a JSONL export — what `wideleak stats <file>`
/// renders. Span records collapse into a per-name rollup; histogram
/// lines already carry their summaries.
#[derive(Debug, Clone, Default)]
pub struct ParsedRun {
    /// Counter values, in file order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, in file order.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, in file order.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-span-name `(count, total duration ns)` rollup, sorted by name.
    pub span_rollup: Vec<(String, u64, u64)>,
    /// Number of event lines.
    pub events: u64,
    /// Lines that did not match any known shape.
    pub skipped: u64,
}

/// Extracts the u64 value of `"key":<digits>` from a flat JSON line.
pub(crate) fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts and unescapes the value of `"key":"..."` from a flat JSON line.
pub(crate) fn json_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = line[at..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Parses a JSONL export produced by [`to_jsonl`] back into a
/// renderable [`ParsedRun`]. Unknown or malformed lines are counted in
/// `skipped` rather than failing the whole file.
#[must_use]
pub fn parse_jsonl(text: &str) -> ParsedRun {
    let mut run = ParsedRun::default();
    let mut rollup: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match json_str(line, "type").as_deref() {
            Some("meta") => {}
            Some("span") => {
                let (Some(name), Some(dur)) =
                    (json_str(line, "name"), json_u64(line, "duration_ns"))
                else {
                    run.skipped += 1;
                    continue;
                };
                let e = rollup.entry(name).or_insert((0, 0));
                e.0 += 1;
                e.1 += dur;
            }
            Some("counter") => {
                let (Some(name), Some(value)) = (json_str(line, "name"), json_u64(line, "value"))
                else {
                    run.skipped += 1;
                    continue;
                };
                run.counters.push((name, value));
            }
            Some("gauge") => {
                let (Some(name), Some(value)) = (json_str(line, "name"), json_u64(line, "value"))
                else {
                    run.skipped += 1;
                    continue;
                };
                run.gauges.push((name, value));
            }
            Some("histogram") => {
                let Some(name) = json_str(line, "name") else {
                    run.skipped += 1;
                    continue;
                };
                let g = |k| json_u64(line, k).unwrap_or(0);
                run.histograms.push((
                    name,
                    HistogramSummary {
                        count: g("count"),
                        sum_ns: g("sum_ns"),
                        min_ns: g("min_ns"),
                        max_ns: g("max_ns"),
                        p50_ns: g("p50_ns"),
                        p90_ns: g("p90_ns"),
                        p95_ns: g("p95_ns"),
                        p99_ns: g("p99_ns"),
                    },
                ));
            }
            Some("event") => run.events += 1,
            _ => run.skipped += 1,
        }
    }
    run.span_rollup =
        rollup.into_iter().map(|(name, (count, total))| (name, count, total)).collect();
    run
}

/// Renders a [`ParsedRun`] in the same style as [`summary_table`].
#[must_use]
pub fn parsed_summary_table(run: &ParsedRun) -> String {
    let mut out = String::new();
    out.push_str("== telemetry summary (from export) ==\n");
    if !run.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &run.counters {
            let _ = writeln!(out, "  {name:<52} {value:>10}");
        }
    }
    if !run.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &run.gauges {
            let _ = writeln!(out, "  {name:<52} {value:>10}");
        }
    }
    if !run.histograms.is_empty() {
        let _ = writeln!(
            out,
            "latency:\n  {:<44} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "count", "p50", "p90", "p95", "p99", "max"
        );
        for (name, h) in &run.histograms {
            histogram_row(name, h, &mut out);
        }
    }
    if !run.span_rollup.is_empty() {
        let _ = writeln!(out, "spans:\n  {:<44} {:>8} {:>10}", "name", "count", "total");
        for (name, count, total_ns) in &run.span_rollup {
            let _ = writeln!(out, "  {:<44} {:>8} {:>10}", name, count, humanize_ns(*total_ns));
        }
    }
    if run.events > 0 {
        let _ = writeln!(out, "events: {}", run.events);
    }
    if run.skipped > 0 {
        let _ = writeln!(out, "unparsed lines: {}", run.skipped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use std::time::Duration;

    fn sample_snapshot() -> Snapshot {
        let c = Collector::new();
        {
            let _g = c.span("outer").field("app", "netflix").field("ok", true).field("n", 3u64);
            drop(c.span("inner"));
        }
        c.incr("requests");
        c.set_gauge("queue_depth", 3);
        c.observe("latency", Duration::from_micros(120));
        c.event("info", "quote\" backslash\\ and\nnewline");
        c.snapshot()
    }

    #[test]
    fn jsonl_lines_have_type_discriminators() {
        let text = to_jsonl(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"span\"")));
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"counter\"")));
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"gauge\"")));
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"histogram\"")));
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"event\"")));
        // Every line is brace-balanced and ends cleanly.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line: {l}");
        }
    }

    #[test]
    fn json_strings_are_escaped() {
        let text = to_jsonl(&sample_snapshot());
        let event_line = text.lines().find(|l| l.contains("\"type\":\"event\"")).unwrap();
        assert!(event_line.contains("quote\\\" backslash\\\\ and\\nnewline"));
        assert!(!event_line.contains('\n'));
    }

    #[test]
    fn span_fields_serialize_with_types() {
        let text = to_jsonl(&sample_snapshot());
        let span_line = text.lines().find(|l| l.contains("\"name\":\"outer\"")).unwrap();
        assert!(span_line.contains("\"app\":\"netflix\""));
        assert!(span_line.contains("\"ok\":true"));
        assert!(span_line.contains("\"n\":3"));
    }

    #[test]
    fn summary_table_mentions_every_section() {
        let table = summary_table(&sample_snapshot());
        for needle in
            ["counters:", "gauges:", "latency:", "spans:", "events", "requests", "queue_depth"]
        {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let snap = sample_snapshot();
        let run = parse_jsonl(&to_jsonl(&snap));
        assert_eq!(run.skipped, 0);
        assert_eq!(run.counters, snap.counters);
        assert_eq!(run.gauges, snap.gauges);
        assert_eq!(run.events, snap.events.len() as u64);
        assert_eq!(run.histograms.len(), snap.histograms.len());
        // Two spans with distinct names → two rollup rows of count 1.
        assert_eq!(run.span_rollup.len(), 2);
        assert!(run.span_rollup.iter().all(|(_, c, _)| *c == 1));
        let table = parsed_summary_table(&run);
        assert!(table.contains("requests"));
    }

    #[test]
    fn parse_tolerates_garbage_lines() {
        let run = parse_jsonl("not json\n{\"type\":\"counter\",\"name\":\"x\",\"value\":7}\n{}");
        assert_eq!(run.counters, vec![("x".to_owned(), 7)]);
        assert_eq!(run.skipped, 2);
    }

    #[test]
    fn humanize_picks_sane_units() {
        assert_eq!(humanize_ns(999), "999ns");
        assert_eq!(humanize_ns(1_500), "1.5us");
        assert_eq!(humanize_ns(2_500_000), "2.5ms");
        assert_eq!(humanize_ns(3_000_000_000), "3.00s");
    }
}
