//! Live metrics exposition: a minimal Prometheus-style text endpoint
//! hand-rolled over `std::net::TcpListener`.
//!
//! `wideleak serve` runs one of these next to the DRM socket so a
//! scraper (or the CI trace-smoke job's `curl`) can watch counters
//! and latency histograms move while the server handles real frames.
//! The HTTP dialect is deliberately tiny — `GET /metrics` and
//! `GET /healthz`, `Connection: close`, no keep-alive, no TLS — to
//! stay vendor-light; the render side follows the Prometheus text
//! exposition format (`# TYPE` comments, `{quantile="..."}` labels)
//! closely enough for standard scrapers to ingest.
//!
//! The accept loop is non-blocking with a short poll interval and a
//! shared shutdown flag, mirroring the DRM socket server, so ctrl-c
//! tears both down promptly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::Registry;

/// How often the accept loop re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Per-request socket timeout; a stalled scraper cannot wedge the
/// exposition thread past this.
const REQUEST_TIMEOUT: Duration = Duration::from_millis(500);

/// Rewrites a metric name into the Prometheus charset: `[a-zA-Z0-9_]`
/// with every other byte (the registry uses dotted names) mapped to
/// `_`, prefixed with `wideleak_`.
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("wideleak_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the registry's counters, gauges and histograms in the
/// Prometheus text exposition format. Histograms render as summaries:
/// `<name>_ns{quantile="..."}` rows plus `_count` and `_sum_ns`.
#[must_use]
pub fn render_prometheus(registry: &Registry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in registry.counter_values() {
        let metric = sanitize_metric_name(&name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in registry.gauge_values() {
        let metric = sanitize_metric_name(&name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, h) in registry.histogram_summaries() {
        let metric = sanitize_metric_name(&name);
        let _ = writeln!(out, "# TYPE {metric}_ns summary");
        for (q, v) in [("0.5", h.p50_ns), ("0.9", h.p90_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)]
        {
            let _ = writeln!(out, "{metric}_ns{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{metric}_ns_sum {}", h.sum_ns);
        let _ = writeln!(out, "{metric}_ns_count {}", h.count);
    }
    out
}

fn metrics_body() -> String {
    use std::fmt::Write as _;
    let mut body = String::from("# TYPE wideleak_up gauge\nwideleak_up 1\n");
    let _ = writeln!(
        body,
        "# TYPE wideleak_trace_dropped_spans_total counter\nwideleak_trace_dropped_spans_total {}",
        crate::trace::dropped_spans()
    );
    body.push_str(&render_prometheus(crate::global().registry()));
    body
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Reads up to the end of the request head and returns the request
/// line, or `None` on malformed/oversized/timed-out input.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(str::to_owned)
}

fn handle_request(mut stream: TcpStream) {
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        write_response(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
        return;
    }
    match path {
        "/metrics" => {
            write_response(&mut stream, "200 OK", "text/plain; version=0.0.4", &metrics_body())
        }
        "/healthz" => write_response(&mut stream, "200 OK", "text/plain", "ok\n"),
        _ => write_response(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// A running exposition endpoint. Dropping it (or calling
/// [`ExpositionServer::shutdown`]) stops the accept loop and joins
/// the serving thread.
pub struct ExpositionServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ExpositionServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving scrapes
    /// on a background thread.
    pub fn bind(addr: &str) -> std::io::Result<ExpositionServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle =
            std::thread::Builder::new().name("wideleak-metrics".to_owned()).spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            handle_request(stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })?;
        Ok(ExpositionServer { local_addr, shutdown, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ExpositionServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn sanitizer_maps_dots_to_underscores() {
        assert_eq!(sanitize_metric_name("binder.tcp.rtt"), "wideleak_binder_tcp_rtt");
        assert_eq!(sanitize_metric_name("odd-name!"), "wideleak_odd_name_");
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let registry = Registry::default();
        registry.counter("server.frames").fetch_add(3, Ordering::Relaxed);
        registry.gauge("pool.depth").store(2, Ordering::Relaxed);
        registry.histogram("binder.tcp.rtt").observe(Duration::from_micros(150));
        let text = render_prometheus(&registry);
        assert!(text.contains("# TYPE wideleak_server_frames counter"));
        assert!(text.contains("wideleak_server_frames 3"));
        assert!(text.contains("wideleak_pool_depth 2"));
        assert!(text.contains("wideleak_binder_tcp_rtt_ns{quantile=\"0.5\"}"));
        assert!(text.contains("wideleak_binder_tcp_rtt_ns_count 1"));
    }

    #[test]
    fn endpoint_serves_metrics_health_and_404() {
        crate::enable();
        crate::incr("expose.test.hits");
        let server = ExpositionServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("wideleak_up 1"));
        assert!(metrics.contains("wideleak_expose_test_hits"));

        let health = http_get(addr, "/healthz");
        assert!(health.contains("200 OK") && health.ends_with("ok\n"));

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
        // The port is released: a fresh bind to the same addr works.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
