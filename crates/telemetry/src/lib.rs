//! `wideleak-telemetry`: structured tracing, metrics and run-report
//! export for the WideLeak DRM stack.
//!
//! The paper's study and attack pipelines cross every layer of the
//! simulated Android stack — binder transactions, OEMCrypto sessions,
//! OTT backend requests, per-app monitoring. This crate gives all of
//! them one lightweight observability substrate:
//!
//! - [`span`] / [`span!`] — RAII guards measuring a named region with
//!   parent/child nesting (thread-local stack) and key=value fields;
//!   each span also feeds a latency histogram of the same name;
//! - [`incr`] / [`add`] — named monotonic counters;
//! - [`observe`] — named fixed-bucket histograms with p50/p90/p99;
//! - [`event`] — a bounded last-N ring of discrete events
//!   ("flight recorder");
//! - [`export`] — a run [`Snapshot`] rendered as JSONL (one object per
//!   line) or a human-readable summary table.
//!
//! The global collector starts **disabled**: every entry point checks
//! one relaxed atomic load and returns inert guards, so uninstrumented
//! runs pay no measurable cost. `wideleak --telemetry out.jsonl ...`
//! calls [`enable`] and exports at exit.
//!
//! Span storage is sharded across a fixed set of mutexes (selected by
//! span id) so concurrent binder threads do not serialise on a single
//! collector lock.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod export;
pub mod expose;
pub mod metrics;
pub mod span;
pub mod trace;
pub mod trace_report;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

pub use events::{Event, EventRing};
pub use export::{summary_table, to_jsonl};
pub use expose::ExpositionServer;
pub use metrics::{CounterHandle, Histogram, HistogramSummary, Registry};
pub use span::{FieldValue, SpanGuard, SpanRecord};
pub use trace::{TraceContext, TraceGuard, TraceSpan};

/// Number of span-storage shards. Spans are appended to
/// `shards[id % SHARDS]`, so concurrent threads rarely contend.
pub const SHARDS: usize = 8;

/// The telemetry sink: spans, counters, histograms and events.
///
/// Instantiable for unit tests; production code uses the process-wide
/// instance behind [`global`] via the crate-level helpers.
pub struct Collector {
    enabled: AtomicBool,
    epoch: Instant,
    next_span_id: AtomicU64,
    span_shards: [Mutex<Vec<SpanRecord>>; SHARDS],
    registry: Registry,
    events: EventRing,
}

impl Collector {
    /// A collector that records immediately (used by tests).
    #[must_use]
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A collector that starts disabled (the global's initial state).
    #[must_use]
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Collector {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(1),
            span_shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            registry: Registry::default(),
            events: EventRing::default(),
        }
    }

    /// Whether recording is on. One relaxed load — the fast path.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this collector was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn record_span(&self, record: SpanRecord) {
        let shard = (record.id % SHARDS as u64) as usize;
        self.span_shards[shard].lock().push(record);
    }

    /// Opens a span; inert (free) when disabled.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if self.is_enabled() {
            SpanGuard::open(self, name)
        } else {
            SpanGuard::inert(name)
        }
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.registry.counter(name).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.registry.gauge(name).store(value, Ordering::Relaxed);
        }
    }

    /// Raises the named gauge to `value` if it is below it (high-water
    /// mark semantics).
    pub fn max_gauge(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.registry.gauge(name).fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records a latency into the named histogram.
    pub fn observe(&self, name: &str, d: Duration) {
        if self.is_enabled() {
            self.registry.histogram(name).observe(d);
        }
    }

    /// Appends an event to the flight-recorder ring.
    pub fn event(&self, level: &'static str, message: impl Into<String>) {
        if self.is_enabled() {
            self.events.push(Event { ts_ns: self.now_ns(), level, message: message.into() });
        }
    }

    /// The metric registry (for direct handle access in hot loops).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A consistent copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in &self.span_shards {
            spans.extend(shard.lock().iter().cloned());
        }
        spans.sort_by_key(|s| s.id);
        Snapshot {
            spans,
            counters: self.registry.counter_values(),
            gauges: self.registry.gauge_values(),
            histograms: self.registry.histogram_summaries(),
            events: self.events.drain_ordered(),
            events_total: self.events.total_pushed(),
        }
    }

    /// Clears all recorded data (enabled state is unchanged).
    pub fn reset(&self) {
        for shard in &self.span_shards {
            shard.lock().clear();
        }
        self.registry.clear();
        self.events.clear();
        self.next_span_id.store(1, Ordering::Relaxed);
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

/// A consistent copy of a collector's recorded state, ready to export.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Completed spans, ordered by id.
    pub spans: Vec<SpanRecord>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values (last-write-wins), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Retained flight-recorder events, oldest first.
    pub events: Vec<Event>,
    /// Total events ever pushed (retained + evicted).
    pub events_total: u64,
}

static GLOBAL: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector. Starts disabled.
pub fn global() -> &'static Collector {
    GLOBAL.get_or_init(Collector::disabled)
}

/// Turns on global recording.
pub fn enable() {
    global().set_enabled(true);
}

/// Turns off global recording.
pub fn disable() {
    global().set_enabled(false);
}

/// Whether global recording is on.
#[must_use]
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Opens a span on the global collector. Inert when disabled.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// Increments a global counter by one.
pub fn incr(name: &str) {
    global().incr(name);
}

/// Adds `n` to a global counter.
pub fn add(name: &str, n: u64) {
    global().add(name, n);
}

/// Sets a global gauge to `value` (last write wins).
pub fn set_gauge(name: &str, value: u64) {
    global().set_gauge(name, value);
}

/// Raises a global gauge to `value` if it is below it.
pub fn max_gauge(name: &str, value: u64) {
    global().max_gauge(name, value);
}

/// Records a latency into a global histogram.
pub fn observe(name: &str, d: Duration) {
    global().observe(name, d);
}

/// Appends an event to the global flight recorder.
pub fn event(level: &'static str, message: impl Into<String>) {
    global().event(level, message);
}

/// Snapshots the global collector.
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global collector's recorded data.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::disabled();
        {
            let _g = c.span("noop").field("k", 1u64);
        }
        c.incr("n");
        c.observe("h", Duration::from_micros(5));
        c.event("info", "dropped");
        let s = c.snapshot();
        assert!(s.spans.is_empty());
        assert!(s.counters.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.events.is_empty());
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let c = Collector::new();
        {
            let outer = c.span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = c.span("inner").field("depth", 2u64);
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(outer);
        }
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 2);
        let inner = s.spans.iter().find(|x| x.name == "inner").unwrap();
        let outer = s.spans.iter().find(|x| x.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        // The outer span contains the inner one in time.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(outer.duration_ns >= inner.duration_ns);
        assert!(inner.duration_ns >= 1_000_000, "inner too short");
        // Each span fed a histogram of its own name.
        assert_eq!(s.histograms.len(), 2);
        assert_eq!(s.histograms[0].0, "inner");
    }

    #[test]
    fn siblings_share_a_parent() {
        let c = Collector::new();
        {
            let _p = c.span("parent");
            drop(c.span("a"));
            drop(c.span("b"));
        }
        let s = c.snapshot();
        let p = s.spans.iter().find(|x| x.name == "parent").unwrap();
        for name in ["a", "b"] {
            let child = s.spans.iter().find(|x| x.name == name).unwrap();
            assert_eq!(child.parent, Some(p.id), "span {name}");
        }
    }

    #[test]
    fn out_of_order_guard_drop_keeps_stack_consistent() {
        let c = Collector::new();
        let a = c.span("a");
        let b = c.span("b");
        drop(a); // dropped before its child `b`
        drop(b);
        let _after = c.span("after");
        drop(_after);
        let s = c.snapshot();
        let after = s.spans.iter().find(|x| x.name == "after").unwrap();
        // `after` must not claim the already-closed spans as parents.
        assert_eq!(after.parent, None);
    }

    #[test]
    fn counters_and_events_accumulate() {
        let c = Collector::new();
        c.incr("x");
        c.add("x", 4);
        c.event("error", "boom");
        let s = c.snapshot();
        assert_eq!(s.counters, vec![("x".to_owned(), 5)]);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].level, "error");
        assert_eq!(s.events_total, 1);
    }

    #[test]
    fn gauges_record_last_value_and_high_water() {
        let c = Collector::new();
        c.set_gauge("depth", 5);
        c.set_gauge("depth", 2);
        c.max_gauge("peak", 3);
        c.max_gauge("peak", 1);
        let s = c.snapshot();
        assert_eq!(s.gauges, vec![("depth".to_owned(), 2), ("peak".to_owned(), 3)]);
    }

    #[test]
    fn reset_clears_all_stores() {
        let c = Collector::new();
        drop(c.span("s"));
        c.incr("n");
        c.event("info", "e");
        c.reset();
        let s = c.snapshot();
        assert!(s.spans.is_empty() && s.counters.is_empty() && s.events.is_empty());
    }
}
