//! Counters and fixed-bucket latency histograms.
//!
//! Both are lock-free on the hot path: a counter is an `AtomicU64`
//! handed out as an `Arc`, and a histogram is a fixed array of atomic
//! bucket counts indexed by the position of the highest set bit of the
//! observed nanosecond value. Registration (first use of a name) takes
//! a short-lived write lock; every subsequent observation is a relaxed
//! atomic increment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// Number of power-of-two latency buckets. Bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds, so 64 buckets span the full `u64`
/// range (bucket 0 also absorbs a zero observation).
pub const BUCKETS: usize = 64;

/// Returns the bucket index for a nanosecond observation.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A fixed-bucket latency histogram with power-of-two bucket bounds.
///
/// Observations are recorded lock-free; quantile queries walk the
/// bucket array and report the bucket upper bound (clamped to the
/// observed maximum), so `p50 <= p90 <= p99 <= max` always holds.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn observe(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in nanoseconds.
    ///
    /// Returns the upper bound of the bucket containing the quantile,
    /// clamped to the observed maximum; `0` when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i).min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// An immutable summary of the current state.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { self.min_ns.load(Ordering::Relaxed) },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 90th percentile.
    pub p90_ns: u64,
    /// Estimated 95th percentile.
    pub p95_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
}

impl HistogramSummary {
    /// Mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Name-keyed registries for counters, gauges and histograms.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    /// Bumped by [`Registry::clear`]; lets cached handles detect that
    /// their `Arc` no longer backs a registered metric.
    generation: AtomicU64,
}

impl Registry {
    /// Returns the counter handle for `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// Returns the gauge handle for `name`, registering it on first use.
    /// A gauge is a last-write-wins value (e.g. a queue depth), unlike
    /// the monotonic counters.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        let mut w = self.gauges.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// Returns the histogram handle for `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// All counters as `(name, value)`, sorted by name.
    #[must_use]
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        out.sort();
        out
    }

    /// All gauges as `(name, value)`, sorted by name.
    #[must_use]
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        out.sort();
        out
    }

    /// All histogram summaries as `(name, summary)`, sorted by name.
    #[must_use]
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        let mut out: Vec<_> =
            self.histograms.read().iter().map(|(k, v)| (k.clone(), v.summary())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The clear-generation of this registry. Handles cached against an
    /// older generation must re-resolve through [`Registry::counter`].
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Drops all registered counters, gauges and histograms.
    pub fn clear(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.generation.fetch_add(1, Ordering::AcqRel);
    }
}

/// A pre-registered handle onto a global counter for hot paths.
///
/// [`crate::incr`] resolves its counter through a name lookup (and its
/// callers often build the name with `format!`) on every increment; a
/// `CounterHandle` does the lookup once and afterwards pays one relaxed
/// atomic add. The handle survives [`crate::reset`]: it remembers the
/// registry generation it resolved against and re-resolves when the
/// registry has been cleared since.
///
/// Designed to live in a `static`:
///
/// ```
/// use wideleak_telemetry::CounterHandle;
/// static REQUESTS: CounterHandle = CounterHandle::new("server.requests");
/// REQUESTS.incr();
/// ```
pub struct CounterHandle {
    name: &'static str,
    /// Registry generation `slot` was resolved against, plus one so that
    /// the initial value (0) never matches a real generation.
    resolved_at: AtomicU64,
    slot: RwLock<Option<Arc<AtomicU64>>>,
}

impl CounterHandle {
    /// Creates an unresolved handle; the counter registers on first use.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        CounterHandle { name, resolved_at: AtomicU64::new(0), slot: RwLock::new(None) }
    }

    /// The counter name this handle resolves.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter on the global collector. No-op while
    /// telemetry is disabled (one relaxed load, like [`crate::add`]).
    pub fn add(&self, n: u64) {
        let collector = crate::global();
        if !collector.is_enabled() {
            return;
        }
        let generation = collector.registry().generation();
        if self.resolved_at.load(Ordering::Acquire) == generation + 1 {
            if let Some(counter) = self.slot.read().as_ref() {
                counter.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        // First use, or the registry was cleared since we resolved:
        // re-register and cache the fresh handle.
        let counter = collector.registry().counter(self.name);
        counter.fetch_add(n, Ordering::Relaxed);
        *self.slot.write() = Some(counter);
        self.resolved_at.store(generation + 1, Ordering::Release);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_tracks_min_max_and_count() {
        let h = Histogram::default();
        for ns in [100u64, 200, 3_000, 40_000] {
            h.observe(Duration::from_nanos(ns));
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 40_000);
        assert_eq!(s.sum_ns, 43_300);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::default();
        // 90 fast observations (~1us) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.observe(Duration::from_nanos(1_000));
        }
        for _ in 0..10 {
            h.observe(Duration::from_nanos(1_000_000));
        }
        let s = h.summary();
        // p50 must fall inside the 1us bucket [1024, 2047].
        assert!(s.p50_ns < 2_048, "p50={}", s.p50_ns);
        // p95 and p99 must land in the slow bucket, clamped to max.
        assert_eq!(s.p95_ns, 1_000_000);
        assert_eq!(s.p99_ns, 1_000_000);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
    }

    #[test]
    fn registry_reuses_handles_by_name() {
        let r = Registry::default();
        r.counter("a").fetch_add(2, Ordering::Relaxed);
        r.counter("a").fetch_add(3, Ordering::Relaxed);
        r.counter("b").fetch_add(1, Ordering::Relaxed);
        assert_eq!(r.counter_values(), vec![("a".to_owned(), 5), ("b".to_owned(), 1)]);
    }

    #[test]
    fn gauges_are_last_write_wins_and_sorted() {
        let r = Registry::default();
        r.gauge("queue").store(5, Ordering::Relaxed);
        r.gauge("queue").store(2, Ordering::Relaxed);
        r.gauge("peak").fetch_max(7, Ordering::Relaxed);
        r.gauge("peak").fetch_max(3, Ordering::Relaxed);
        assert_eq!(r.gauge_values(), vec![("peak".to_owned(), 7), ("queue".to_owned(), 2)]);
    }

    #[test]
    fn clear_bumps_generation_and_drops_all_stores() {
        let r = Registry::default();
        let g0 = r.generation();
        r.counter("c").fetch_add(1, Ordering::Relaxed);
        r.gauge("g").store(9, Ordering::Relaxed);
        r.clear();
        assert_eq!(r.generation(), g0 + 1);
        assert!(r.counter_values().is_empty());
        assert!(r.gauge_values().is_empty());
    }

    #[test]
    fn counter_handle_survives_registry_clear() {
        static HANDLE: CounterHandle = CounterHandle::new("metrics.test.survives_clear");
        crate::enable();
        HANDLE.add(3);
        let registry = crate::global().registry();
        assert_eq!(registry.counter(HANDLE.name()).load(Ordering::Relaxed), 3);
        registry.clear();
        // The cached Arc now backs an orphaned counter; the handle must
        // re-resolve so the increment lands in the fresh registration.
        HANDLE.incr();
        assert_eq!(registry.counter(HANDLE.name()).load(Ordering::Relaxed), 1);
    }
}
