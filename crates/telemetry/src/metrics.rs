//! Counters and fixed-bucket latency histograms.
//!
//! Both are lock-free on the hot path: a counter is an `AtomicU64`
//! handed out as an `Arc`, and a histogram is a fixed array of atomic
//! bucket counts indexed by the position of the highest set bit of the
//! observed nanosecond value. Registration (first use of a name) takes
//! a short-lived write lock; every subsequent observation is a relaxed
//! atomic increment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// Number of power-of-two latency buckets. Bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds, so 64 buckets span the full `u64`
/// range (bucket 0 also absorbs a zero observation).
pub const BUCKETS: usize = 64;

/// Returns the bucket index for a nanosecond observation.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A fixed-bucket latency histogram with power-of-two bucket bounds.
///
/// Observations are recorded lock-free; quantile queries walk the
/// bucket array and report the bucket upper bound (clamped to the
/// observed maximum), so `p50 <= p90 <= p99 <= max` always holds.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn observe(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in nanoseconds.
    ///
    /// Returns the upper bound of the bucket containing the quantile,
    /// clamped to the observed maximum; `0` when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i).min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// An immutable summary of the current state.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { self.min_ns.load(Ordering::Relaxed) },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p99_ns: self.quantile_ns(0.99),
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 90th percentile.
    pub p90_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
}

impl HistogramSummary {
    /// Mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Name-keyed registries for counters and histograms.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Returns the counter handle for `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// Returns the histogram handle for `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// All counters as `(name, value)`, sorted by name.
    #[must_use]
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        out.sort();
        out
    }

    /// All histogram summaries as `(name, summary)`, sorted by name.
    #[must_use]
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        let mut out: Vec<_> =
            self.histograms.read().iter().map(|(k, v)| (k.clone(), v.summary())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drops all registered counters and histograms.
    pub fn clear(&self) {
        self.counters.write().clear();
        self.histograms.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_tracks_min_max_and_count() {
        let h = Histogram::default();
        for ns in [100u64, 200, 3_000, 40_000] {
            h.observe(Duration::from_nanos(ns));
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 40_000);
        assert_eq!(s.sum_ns, 43_300);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::default();
        // 90 fast observations (~1us) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.observe(Duration::from_nanos(1_000));
        }
        for _ in 0..10 {
            h.observe(Duration::from_nanos(1_000_000));
        }
        let s = h.summary();
        // p50 must fall inside the 1us bucket [1024, 2047].
        assert!(s.p50_ns < 2_048, "p50={}", s.p50_ns);
        // p99 must land in the slow bucket, clamped to max.
        assert_eq!(s.p99_ns, 1_000_000);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
    }

    #[test]
    fn registry_reuses_handles_by_name() {
        let r = Registry::default();
        r.counter("a").fetch_add(2, Ordering::Relaxed);
        r.counter("a").fetch_add(3, Ordering::Relaxed);
        r.counter("b").fetch_add(1, Ordering::Relaxed);
        assert_eq!(r.counter_values(), vec![("a".to_owned(), 5), ("b".to_owned(), 1)]);
    }
}
