//! Structured spans: RAII guards measuring a named region of work,
//! with parent/child nesting tracked through a thread-local stack and
//! key=value fields attached at creation.
//!
//! Dropping a guard records a [`SpanRecord`] into the collector and
//! feeds the span's duration into a histogram of the same name, so
//! every instrumented region gets p50/p90/p99 latencies for free.

use std::cell::RefCell;
use std::time::Instant;

use crate::Collector;

thread_local! {
    /// Stack of open span ids on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A typed field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A completed span as stored in the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the collector (1-based; 0 is never issued).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name, e.g. `"binder.transact.in_process"`.
    pub name: &'static str,
    /// Key=value fields attached at creation.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Start offset in nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub duration_ns: u64,
}

/// RAII guard for an open span. Created by [`Collector::span`] or the
/// crate-level [`crate::span`]; recording happens on drop.
///
/// When telemetry is disabled the guard is inert: no allocation, no id,
/// no record.
pub struct SpanGuard<'c> {
    collector: Option<&'c Collector>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start: Instant,
    start_ns: u64,
}

impl<'c> SpanGuard<'c> {
    pub(crate) fn inert(name: &'static str) -> Self {
        SpanGuard {
            collector: None,
            id: 0,
            parent: None,
            name,
            fields: Vec::new(),
            start: Instant::now(),
            start_ns: 0,
        }
    }

    pub(crate) fn open(collector: &'c Collector, name: &'static str) -> Self {
        let id = collector.next_span_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        SpanGuard {
            collector: Some(collector),
            id,
            parent,
            name,
            fields: Vec::new(),
            start: Instant::now(),
            start_ns: collector.now_ns(),
        }
    }

    /// Attaches a key=value field; chainable at the creation site.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if self.collector.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// The span id (0 when inert).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(collector) = self.collector else {
            return;
        };
        let duration = self.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // The innermost entry is this span unless guards were
            // dropped out of order; remove by id to stay correct then.
            if s.last() == Some(&self.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == self.id) {
                s.remove(pos);
            }
        });
        collector.record_span(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            start_ns: self.start_ns,
            duration_ns: u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX),
        });
        collector.observe(self.name, duration);
    }
}

/// Opens a span on the global collector with optional `key = value`
/// fields: `span!("binder.transact", kind = call.kind())`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span($name)$(.field(stringify!($key), $value))+
    };
}
