//! Cross-process distributed tracing for the DRM plane.
//!
//! The PR-1 telemetry spans ([`crate::span`]) nest through a
//! thread-local stack, which goes blind the moment a call crosses a
//! socket: the server's spans land in the server's collector with no
//! causal link back to the client call that triggered them. This
//! module adds the missing layer:
//!
//! - [`TraceContext`] — a `(trace_id, span_id, parent_span_id)`
//!   triple minted per client call and carried across process
//!   boundaries in a fixed 24-byte little-endian wire encoding
//!   ([`TraceContext::WIRE_LEN`]), small enough to ride in a frame
//!   header extension;
//! - [`span`] / [`span_with_parent`] — RAII guards recording
//!   [`TraceSpan`]s that chain through a thread-local context stack
//!   in-process and through an explicit remote parent cross-process;
//! - [`annotate`] — attaches `key=value` annotations (fault
//!   injections, error classes) to the innermost open trace span,
//!   from code that does not own the guard;
//! - [`FileSink`] — a write-through JSONL sink with buffered I/O that
//!   flushes on drop, plus an in-memory bounded buffer ([`drain`])
//!   for in-process analysis and tests.
//!
//! Tracing is gated independently from the metrics collector so the
//! overhead bench can pin tracing-on against tracing-off without
//! silencing counters. Disabled tracing costs one relaxed atomic load
//! per potential span.
//!
//! Span ids embed the process id in their upper half so two processes
//! participating in one trace can never collide; trace ids are mixed
//! from the process id, wall clock and a counter so concurrent client
//! fleets produce distinct traces.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

/// Maximum completed spans retained in the in-memory buffer. Beyond
/// this the oldest are dropped and [`dropped_spans`] counts them.
pub const BUFFER_CAP: usize = 65_536;

/// The causal identity of one span, as carried across the wire.
///
/// `parent_span_id == 0` marks a trace root (span ids are never 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole end-to-end trace.
    pub trace_id: u64,
    /// Identifies this span within the trace.
    pub span_id: u64,
    /// The span this one descends from (0 = root).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Encoded size on the wire: three little-endian `u64`s.
    pub const WIRE_LEN: usize = 24;

    /// Encodes the context into its fixed wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.span_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.parent_span_id.to_le_bytes());
        out
    }

    /// Decodes a context from the start of `buf`; `None` when `buf`
    /// is shorter than [`Self::WIRE_LEN`] or the span id is 0 (which
    /// no tracer ever mints).
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<TraceContext> {
        if buf.len() < Self::WIRE_LEN {
            return None;
        }
        let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let ctx = TraceContext { trace_id: word(0), span_id: word(8), parent_span_id: word(16) };
        if ctx.span_id == 0 {
            return None;
        }
        Some(ctx)
    }
}

/// One completed span of a distributed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique across participating processes).
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_span_id: u64,
    /// Static phase name, e.g. `"drm.call"` or `"tcp.roundtrip"`.
    pub name: &'static str,
    /// Label of the recording process (see [`set_process_label`]).
    pub process: String,
    /// Wall-clock start, nanoseconds since the UNIX epoch, so spans
    /// from different processes on one machine order sensibly.
    pub start_unix_ns: u64,
    /// Monotonic duration in nanoseconds.
    pub duration_ns: u64,
    /// `key=value` annotations (fault injections, error classes, ...).
    pub annotations: Vec<(&'static str, String)>,
}

thread_local! {
    /// Stack of open trace contexts on this thread, innermost last.
    static CTX_STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
    /// Annotations waiting to be claimed by the open span they target.
    static PENDING_ANNOTATIONS: RefCell<Vec<(u64, &'static str, String)>> =
        const { RefCell::new(Vec::new()) };
}

/// The process-wide tracer state behind the module-level functions.
struct Tracer {
    enabled: AtomicBool,
    /// Low 32 bits of the next span id; the pid forms the high bits.
    next_span: AtomicU64,
    /// Salt folded into minted trace ids.
    trace_salt: AtomicU64,
    dropped: AtomicU64,
    buffer: Mutex<Vec<TraceSpan>>,
    sink: Mutex<Option<BufWriter<File>>>,
    process_label: Mutex<String>,
}

static TRACER: Tracer = Tracer {
    enabled: AtomicBool::new(false),
    next_span: AtomicU64::new(1),
    trace_salt: AtomicU64::new(0),
    dropped: AtomicU64::new(0),
    buffer: Mutex::new(Vec::new()),
    sink: Mutex::new(None),
    process_label: Mutex::new(String::new()),
};

/// splitmix64 — the same cheap mixer the fault plane uses for
/// deterministic hashing; here it only needs to spread trace ids.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Turns tracing on for this process.
pub fn enable() {
    if TRACER.trace_salt.load(Ordering::Relaxed) == 0 {
        TRACER
            .trace_salt
            .store(mix64(u64::from(std::process::id()) ^ unix_now_ns()) | 1, Ordering::Relaxed);
    }
    TRACER.enabled.store(true, Ordering::Relaxed);
}

/// Turns tracing off (already-open guards still record on drop).
pub fn disable() {
    TRACER.enabled.store(false, Ordering::Relaxed);
}

/// Whether tracing is on. One relaxed load — the fast path.
#[must_use]
pub fn is_enabled() -> bool {
    TRACER.enabled.load(Ordering::Relaxed)
}

/// Sets the label stamped on this process's spans (e.g. `"serve"`,
/// `"load"`). Defaults to `pid<N>` when never set.
pub fn set_process_label(label: &str) {
    *TRACER.process_label.lock() = label.to_owned();
}

fn process_label() -> String {
    let held = TRACER.process_label.lock();
    if held.is_empty() {
        format!("pid{}", std::process::id())
    } else {
        held.clone()
    }
}

/// Mints a span id unique across processes: pid in the high 32 bits,
/// a process-local counter in the low 32.
fn next_span_id() -> u64 {
    let low = TRACER.next_span.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff;
    (u64::from(std::process::id()) << 32) | low
}

fn mint_trace_id(span_id: u64) -> u64 {
    mix64(span_id ^ TRACER.trace_salt.load(Ordering::Relaxed)) | 1
}

/// The innermost open trace context on this thread, if any. This is
/// what a transport encodes into an outgoing frame.
#[must_use]
pub fn current() -> Option<TraceContext> {
    if !is_enabled() {
        return None;
    }
    CTX_STACK.with(|s| s.borrow().last().copied())
}

/// Attaches `key=value` to the innermost open trace span on this
/// thread. A no-op when tracing is off or no span is open — safe to
/// call from deep library code (e.g. the fault injector seam).
pub fn annotate(key: &'static str, value: impl Into<String>) {
    if !is_enabled() {
        return;
    }
    let Some(ctx) = CTX_STACK.with(|s| s.borrow().last().copied()) else {
        return;
    };
    PENDING_ANNOTATIONS.with(|p| p.borrow_mut().push((ctx.span_id, key, value.into())));
}

/// Opens a trace span. Chains under the innermost open span on this
/// thread, or roots a fresh trace when none is open. Inert (free)
/// while tracing is disabled.
#[must_use]
pub fn span(name: &'static str) -> TraceGuard {
    if !is_enabled() {
        return TraceGuard::inert(name);
    }
    let parent = CTX_STACK.with(|s| s.borrow().last().copied());
    let span_id = next_span_id();
    let ctx = match parent {
        Some(p) => TraceContext { trace_id: p.trace_id, span_id, parent_span_id: p.span_id },
        None => TraceContext { trace_id: mint_trace_id(span_id), span_id, parent_span_id: 0 },
    };
    TraceGuard::open(name, ctx)
}

/// Opens a trace span under an explicit remote parent — the server
/// side of a cross-process call adopts the context decoded from the
/// request frame so its spans stitch into the caller's trace.
#[must_use]
pub fn span_with_parent(name: &'static str, parent: TraceContext) -> TraceGuard {
    if !is_enabled() {
        return TraceGuard::inert(name);
    }
    let ctx = TraceContext {
        trace_id: parent.trace_id,
        span_id: next_span_id(),
        parent_span_id: parent.span_id,
    };
    TraceGuard::open(name, ctx)
}

/// RAII guard for an open trace span; recording happens on drop.
pub struct TraceGuard {
    ctx: Option<TraceContext>,
    name: &'static str,
    start: Instant,
    start_unix_ns: u64,
    annotations: Vec<(&'static str, String)>,
}

impl TraceGuard {
    fn inert(name: &'static str) -> Self {
        TraceGuard {
            ctx: None,
            name,
            start: Instant::now(),
            start_unix_ns: 0,
            annotations: Vec::new(),
        }
    }

    fn open(name: &'static str, ctx: TraceContext) -> Self {
        CTX_STACK.with(|s| s.borrow_mut().push(ctx));
        TraceGuard {
            ctx: Some(ctx),
            name,
            start: Instant::now(),
            start_unix_ns: unix_now_ns(),
            annotations: Vec::new(),
        }
    }

    /// The context this guard opened (`None` when inert). A transport
    /// encodes this into the outgoing frame.
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Attaches `key=value`; chainable at the creation site.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<String>) -> Self {
        if self.ctx.is_some() {
            self.annotations.push((key, value.into()));
        }
        self
    }

    /// Attaches `key=value` to an already-created guard.
    pub fn note(&mut self, key: &'static str, value: impl Into<String>) {
        if self.ctx.is_some() {
            self.annotations.push((key, value.into()));
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx else {
            return;
        };
        let duration = self.start.elapsed();
        CTX_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last().map(|c| c.span_id) == Some(ctx.span_id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|c| c.span_id == ctx.span_id) {
                s.remove(pos);
            }
        });
        let mut annotations = std::mem::take(&mut self.annotations);
        PENDING_ANNOTATIONS.with(|p| {
            let mut p = p.borrow_mut();
            let mut i = 0;
            while i < p.len() {
                if p[i].0 == ctx.span_id {
                    let (_, key, value) = p.remove(i);
                    annotations.push((key, value));
                } else {
                    i += 1;
                }
            }
        });
        record(TraceSpan {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            name: self.name,
            process: process_label(),
            start_unix_ns: self.start_unix_ns,
            duration_ns: u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX),
            annotations,
        });
    }
}

fn record(span: TraceSpan) {
    {
        let mut sink = TRACER.sink.lock();
        if let Some(writer) = sink.as_mut() {
            let mut line = String::new();
            span_jsonl(&span, &mut line);
            let _ = writer.write_all(line.as_bytes());
        }
    }
    let mut buffer = TRACER.buffer.lock();
    if buffer.len() >= BUFFER_CAP {
        buffer.remove(0);
        TRACER.dropped.fetch_add(1, Ordering::Relaxed);
    }
    buffer.push(span);
}

/// Spans evicted from the in-memory buffer since process start.
#[must_use]
pub fn dropped_spans() -> u64 {
    TRACER.dropped.load(Ordering::Relaxed)
}

/// Drains and returns the in-memory span buffer, oldest first.
#[must_use]
pub fn drain() -> Vec<TraceSpan> {
    std::mem::take(&mut *TRACER.buffer.lock())
}

/// Flushes the file sink, if one is installed.
pub fn flush() {
    if let Some(writer) = TRACER.sink.lock().as_mut() {
        let _ = writer.flush();
    }
}

/// A handle on an installed JSONL trace sink. Spans are written
/// through a [`BufWriter`] as they complete; dropping the handle
/// flushes and uninstalls the sink, so durability does not depend on
/// an explicit export call.
pub struct FileSink {
    _private: (),
}

impl FileSink {
    /// Creates (truncates) `path` and installs it as the process-wide
    /// trace sink. Replaces (and flushes) any previous sink.
    pub fn create(path: &Path) -> std::io::Result<FileSink> {
        let file = File::create(path)?;
        let old = TRACER.sink.lock().replace(BufWriter::new(file));
        if let Some(mut old) = old {
            let _ = old.flush();
        }
        Ok(FileSink { _private: () })
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        if let Some(mut writer) = TRACER.sink.lock().take() {
            let _ = writer.flush();
        }
    }
}

/// Serializes one span as a JSONL line (with trailing newline) into
/// `out`. Ids render as fixed-width hex strings — they use the full
/// `u64` range, which does not survive JSON number parsers.
pub fn span_jsonl(span: &TraceSpan, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"trace_span\",\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\"",
        span.trace_id, span.span_id, span.parent_span_id,
    );
    out.push_str(",\"name\":");
    crate::export::push_json_str(span.name, out);
    out.push_str(",\"process\":");
    crate::export::push_json_str(&span.process, out);
    let _ = write!(
        out,
        ",\"start_unix_ns\":{},\"duration_ns\":{}",
        span.start_unix_ns, span.duration_ns
    );
    if !span.annotations.is_empty() {
        out.push_str(",\"annotations\":{");
        for (i, (k, v)) in span.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::export::push_json_str(k, out);
            out.push(':');
            crate::export::push_json_str(v, out);
        }
        out.push('}');
    }
    out.push_str("}\n");
}

/// Renders a batch of spans as JSONL.
#[must_use]
pub fn to_jsonl(spans: &[TraceSpan]) -> String {
    let mut out = String::new();
    for span in spans {
        span_jsonl(span, &mut out);
    }
    out
}

/// A trace span re-read from a JSONL sink — the `wideleak trace`
/// subcommand's input shape. Names and annotation keys become owned
/// strings on the way back in.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTraceSpan {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_span_id: u64,
    /// Phase name.
    pub name: String,
    /// Recording process label.
    pub process: String,
    /// Wall-clock start (UNIX epoch nanoseconds).
    pub start_unix_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// `key=value` annotations.
    pub annotations: Vec<(String, String)>,
}

/// Parses one JSONL line; `None` unless it is a `trace_span` record.
#[must_use]
pub fn parse_span_line(line: &str) -> Option<ParsedTraceSpan> {
    if crate::export::json_str(line, "type").as_deref() != Some("trace_span") {
        return None;
    }
    let hex =
        |key| crate::export::json_str(line, key).and_then(|s| u64::from_str_radix(&s, 16).ok());
    let mut annotations = Vec::new();
    if let Some(at) = line.find("\"annotations\":{") {
        let body = &line[at + "\"annotations\":{".len()..];
        let mut rest = body;
        while let Some(k_end) = rest.strip_prefix('"').and_then(|r| r.find('"')) {
            let key = rest[1..=k_end].trim_end_matches('"').to_owned();
            let Some(v_start) = rest.find("\":\"") else { break };
            let tail = &rest[v_start + 3..];
            let Some(v_end) = tail.find('"') else { break };
            annotations.push((key, tail[..v_end].to_owned()));
            let after = &tail[v_end + 1..];
            match after.strip_prefix(',') {
                Some(next) => rest = next,
                None => break,
            }
        }
    }
    Some(ParsedTraceSpan {
        trace_id: hex("trace_id")?,
        span_id: hex("span_id")?,
        parent_span_id: hex("parent_span_id")?,
        name: crate::export::json_str(line, "name")?,
        process: crate::export::json_str(line, "process")?,
        start_unix_ns: crate::export::json_u64(line, "start_unix_ns")?,
        duration_ns: crate::export::json_u64(line, "duration_ns")?,
        annotations,
    })
}

/// Parses a whole JSONL document, skipping non-trace lines.
#[must_use]
pub fn parse_jsonl(text: &str) -> Vec<ParsedTraceSpan> {
    text.lines().filter_map(parse_span_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module share the process-wide tracer, so they
    /// funnel through one lock to keep drains from interleaving.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_fresh_tracer<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock();
        enable();
        let _ = drain();
        let r = f();
        disable();
        let _ = drain();
        r
    }

    #[test]
    fn context_wire_round_trip() {
        let ctx = TraceContext { trace_id: u64::MAX, span_id: 1, parent_span_id: 0 };
        assert_eq!(TraceContext::decode(&ctx.encode()), Some(ctx));
        // Truncated and zero-span-id buffers decode to None.
        assert_eq!(TraceContext::decode(&ctx.encode()[..23]), None);
        let zero = TraceContext { trace_id: 7, span_id: 0, parent_span_id: 0 };
        assert_eq!(TraceContext::decode(&zero.encode()), None);
    }

    #[test]
    fn spans_chain_in_process_and_root_fresh_traces() {
        with_fresh_tracer(|| {
            {
                let root = span("root");
                let root_ctx = root.context().unwrap();
                assert_eq!(root_ctx.parent_span_id, 0);
                {
                    let child = span("child");
                    let child_ctx = child.context().unwrap();
                    assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
                    assert_eq!(child_ctx.parent_span_id, root_ctx.span_id);
                }
            }
            let spans = drain();
            assert_eq!(spans.len(), 2);
            // Children record before parents (guard drop order).
            assert_eq!(spans[0].name, "child");
            assert_eq!(spans[1].name, "root");
            assert_eq!(spans[0].trace_id, spans[1].trace_id);
        });
    }

    #[test]
    fn remote_parent_adoption_stitches_processes() {
        with_fresh_tracer(|| {
            let remote = TraceContext { trace_id: 42, span_id: 7, parent_span_id: 0 };
            {
                let server = span_with_parent("server.handle", remote);
                let ctx = server.context().unwrap();
                assert_eq!(ctx.trace_id, 42);
                assert_eq!(ctx.parent_span_id, 7);
                drop(span("server.inner"));
            }
            let spans = drain();
            assert!(spans.iter().all(|s| s.trace_id == 42));
            let inner = spans.iter().find(|s| s.name == "server.inner").unwrap();
            let server = spans.iter().find(|s| s.name == "server.handle").unwrap();
            assert_eq!(inner.parent_span_id, server.span_id);
        });
    }

    #[test]
    fn annotations_attach_to_the_innermost_open_span() {
        with_fresh_tracer(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                    annotate("fault", "tcp.reset");
                }
                annotate("late", "outer-only");
            }
            let spans = drain();
            let inner = spans.iter().find(|s| s.name == "inner").unwrap();
            assert_eq!(inner.annotations, vec![("fault", "tcp.reset".to_owned())]);
            let outer = spans.iter().find(|s| s.name == "outer").unwrap();
            assert_eq!(outer.annotations, vec![("late", "outer-only".to_owned())]);
        });
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = TEST_LOCK.lock();
        disable();
        let _ = drain();
        {
            let g = span("noop");
            assert!(g.context().is_none());
            annotate("k", "v");
        }
        assert!(drain().is_empty());
        assert_eq!(current(), None);
    }

    #[test]
    fn jsonl_round_trips() {
        let original = TraceSpan {
            trace_id: 0xdead_beef_dead_beef,
            span_id: 0x1234,
            parent_span_id: 0,
            name: "drm.call",
            process: "load".to_owned(),
            start_unix_ns: 1_700_000_000_000_000_000,
            duration_ns: 12_345,
            annotations: vec![("fault", "wire.bad_crc".to_owned()), ("kind", "Decrypt".to_owned())],
        };
        let text = to_jsonl(std::slice::from_ref(&original));
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.trace_id, original.trace_id);
        assert_eq!(p.span_id, original.span_id);
        assert_eq!(p.parent_span_id, 0);
        assert_eq!(p.name, "drm.call");
        assert_eq!(p.process, "load");
        assert_eq!(p.start_unix_ns, original.start_unix_ns);
        assert_eq!(p.duration_ns, original.duration_ns);
        assert_eq!(
            p.annotations,
            vec![
                ("fault".to_owned(), "wire.bad_crc".to_owned()),
                ("kind".to_owned(), "Decrypt".to_owned())
            ]
        );
    }

    #[test]
    fn file_sink_writes_through_and_flushes_on_drop() {
        with_fresh_tracer(|| {
            let dir = std::env::temp_dir();
            let path = dir.join(format!("wideleak-trace-sink-{}.jsonl", std::process::id()));
            {
                let _sink = FileSink::create(&path).unwrap();
                drop(span("durable"));
                // No explicit flush: the Drop impl must make this durable.
            }
            let text = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            let parsed = parse_jsonl(&text);
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0].name, "durable");
        });
    }
}
