//! Offline analysis of trace JSONL sinks — the engine behind the
//! `wideleak trace` subcommand.
//!
//! Takes the [`crate::trace::ParsedTraceSpan`]s re-read from one or
//! more sink files (client and server processes usually write separate
//! sinks; feeding both stitches the cross-process picture back
//! together) and renders three views:
//!
//! 1. **Per-phase latency** — count/p50/p90/max per span name, the
//!    table that shows where a DRM call's time actually goes;
//! 2. **Slowest-trace exemplars** — the worst end-to-end traces as
//!    indented span trees with per-span process labels and timings;
//! 3. **Fault correlation** — which injected faults appeared, how
//!    often, and what latency the faulted traces paid versus the
//!    clean ones.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use crate::export::humanize_ns;
use crate::trace::ParsedTraceSpan;

/// How many slowest traces the exemplar section renders.
const EXEMPLAR_COUNT: usize = 3;

/// One reassembled end-to-end trace.
#[derive(Debug)]
pub struct AssembledTrace {
    /// The shared trace id.
    pub trace_id: u64,
    /// All spans carrying that id, in input order.
    pub spans: Vec<ParsedTraceSpan>,
}

impl AssembledTrace {
    /// The root span (parent id 0), if the sink captured it.
    #[must_use]
    pub fn root(&self) -> Option<&ParsedTraceSpan> {
        self.spans.iter().find(|s| s.parent_span_id == 0)
    }

    /// End-to-end duration: the root's duration, or the longest span
    /// when the root is missing (partial sink).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.root()
            .map(|r| r.duration_ns)
            .or_else(|| self.spans.iter().map(|s| s.duration_ns).max())
            .unwrap_or(0)
    }

    /// Distinct process labels participating in this trace.
    #[must_use]
    pub fn processes(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !seen.contains(&s.process.as_str()) {
                seen.push(&s.process);
            }
        }
        seen
    }

    /// All `fault` annotation values across the trace's spans.
    #[must_use]
    pub fn faults(&self) -> Vec<&str> {
        self.annotation_values("fault")
    }

    /// All values for one annotation key across the trace's spans.
    #[must_use]
    pub fn annotation_values(&self, key: &str) -> Vec<&str> {
        self.spans
            .iter()
            .flat_map(|s| s.annotations.iter())
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// Groups spans by trace id, preserving first-seen trace order.
#[must_use]
pub fn assemble(spans: &[ParsedTraceSpan]) -> Vec<AssembledTrace> {
    let mut order: Vec<u64> = Vec::new();
    let mut by_id: HashMap<u64, Vec<ParsedTraceSpan>> = HashMap::new();
    for span in spans {
        if !by_id.contains_key(&span.trace_id) {
            order.push(span.trace_id);
        }
        by_id.entry(span.trace_id).or_default().push(span.clone());
    }
    order
        .into_iter()
        .map(|trace_id| AssembledTrace { trace_id, spans: by_id.remove(&trace_id).unwrap() })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders the per-phase latency table: one row per span name with
/// count, p50, p90 and max durations.
#[must_use]
pub fn render_phase_table(spans: &[ParsedTraceSpan]) -> String {
    let mut by_phase: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for span in spans {
        by_phase.entry(&span.name).or_default().push(span.duration_ns);
    }
    let mut out = String::from("per-phase latency\n");
    let _ =
        writeln!(out, "  {:<28} {:>7} {:>10} {:>10} {:>10}", "phase", "count", "p50", "p90", "max");
    for (phase, mut durations) in by_phase {
        durations.sort_unstable();
        let _ = writeln!(
            out,
            "  {:<28} {:>7} {:>10} {:>10} {:>10}",
            phase,
            durations.len(),
            humanize_ns(percentile(&durations, 0.50)),
            humanize_ns(percentile(&durations, 0.90)),
            humanize_ns(*durations.last().unwrap_or(&0)),
        );
    }
    out
}

/// Renders one trace as an indented span tree ordered by start time,
/// with orphaned spans (parent missing from the sink) at top level.
#[must_use]
pub fn render_trace_tree(trace: &AssembledTrace) -> String {
    let mut children: HashMap<u64, Vec<&ParsedTraceSpan>> = HashMap::new();
    let ids: Vec<u64> = trace.spans.iter().map(|s| s.span_id).collect();
    let mut roots: Vec<&ParsedTraceSpan> = Vec::new();
    for span in &trace.spans {
        if span.parent_span_id != 0 && ids.contains(&span.parent_span_id) {
            children.entry(span.parent_span_id).or_default().push(span);
        } else {
            roots.push(span);
        }
    }
    let by_start =
        |a: &&ParsedTraceSpan, b: &&ParsedTraceSpan| a.start_unix_ns.cmp(&b.start_unix_ns);
    roots.sort_by(by_start);
    for list in children.values_mut() {
        list.sort_by(by_start);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {:016x}  total {}  processes: {}",
        trace.trace_id,
        humanize_ns(trace.duration_ns()),
        trace.processes().join(" -> "),
    );
    // Iterative DFS so deep (or cyclic, if a sink is corrupt) trees
    // cannot overflow the stack; the visited set breaks cycles.
    let mut stack: Vec<(&ParsedTraceSpan, usize)> =
        roots.into_iter().rev().map(|s| (s, 1)).collect();
    let mut visited: Vec<u64> = Vec::new();
    while let Some((span, depth)) = stack.pop() {
        if visited.contains(&span.span_id) {
            continue;
        }
        visited.push(span.span_id);
        let notes = if span.annotations.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> =
                span.annotations.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", pairs.join(" "))
        };
        let _ = writeln!(
            out,
            "{:indent$}{:<26} {:>10}  ({}){notes}",
            "",
            span.name,
            humanize_ns(span.duration_ns),
            span.process,
            indent = depth * 2,
        );
        if let Some(kids) = children.get(&span.span_id) {
            for kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    out
}

/// Renders the fault-correlation section: per-fault counts and the
/// p50 latency of faulted versus clean traces.
#[must_use]
pub fn render_fault_correlation(traces: &[AssembledTrace]) -> String {
    let mut fault_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut error_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut faulted: Vec<u64> = Vec::new();
    let mut clean: Vec<u64> = Vec::new();
    for trace in traces {
        let faults = trace.faults();
        for f in &faults {
            *fault_counts.entry(f).or_default() += 1;
        }
        for e in trace.annotation_values("error") {
            *error_counts.entry(e).or_default() += 1;
        }
        if faults.is_empty() {
            clean.push(trace.duration_ns());
        } else {
            faulted.push(trace.duration_ns());
        }
    }
    clean.sort_unstable();
    faulted.sort_unstable();
    let mut out = String::from("fault correlation\n");
    let _ = writeln!(
        out,
        "  traces: {} clean (p50 {}), {} faulted (p50 {})",
        clean.len(),
        humanize_ns(percentile(&clean, 0.50)),
        faulted.len(),
        humanize_ns(percentile(&faulted, 0.50)),
    );
    if fault_counts.is_empty() {
        out.push_str("  no fault annotations recorded\n");
    }
    for (fault, count) in fault_counts {
        let _ = writeln!(out, "  fault {fault:<22} x{count}");
    }
    for (error, count) in error_counts {
        let _ = writeln!(out, "  error {error:<22} x{count}");
    }
    out
}

/// The full `wideleak trace` report: phase table, slowest-trace
/// exemplars, fault correlation.
#[must_use]
pub fn render_trace_report(spans: &[ParsedTraceSpan]) -> String {
    if spans.is_empty() {
        return "no trace spans found\n".to_owned();
    }
    let traces = assemble(spans);
    let mut out = String::new();
    let _ = writeln!(out, "{} spans across {} traces\n", spans.len(), traces.len());
    out.push_str(&render_phase_table(spans));
    out.push('\n');
    let mut by_duration: Vec<&AssembledTrace> = traces.iter().collect();
    by_duration.sort_by_key(|t| std::cmp::Reverse(t.duration_ns()));
    let _ = writeln!(out, "slowest {} traces", EXEMPLAR_COUNT.min(by_duration.len()));
    for trace in by_duration.iter().take(EXEMPLAR_COUNT) {
        out.push_str(&render_trace_tree(trace));
    }
    out.push('\n');
    out.push_str(&render_fault_correlation(&traces));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn span(
        trace_id: u64,
        span_id: u64,
        parent: u64,
        name: &str,
        process: &str,
        start: u64,
        duration: u64,
        annotations: Vec<(&str, &str)>,
    ) -> ParsedTraceSpan {
        ParsedTraceSpan {
            trace_id,
            span_id,
            parent_span_id: parent,
            name: name.to_owned(),
            process: process.to_owned(),
            start_unix_ns: start,
            duration_ns: duration,
            annotations: annotations
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
        }
    }

    fn sample_spans() -> Vec<ParsedTraceSpan> {
        vec![
            span(1, 10, 0, "drm.call", "load", 100, 5_000, vec![]),
            span(1, 11, 10, "tcp.roundtrip", "load", 150, 4_000, vec![]),
            span(1, 12, 11, "server.handle", "serve", 200, 3_000, vec![]),
            span(2, 20, 0, "drm.call", "load", 300, 9_000, vec![("fault", "garble_body")]),
            span(2, 21, 20, "tcp.roundtrip", "load", 320, 8_000, vec![]),
        ]
    }

    #[test]
    fn assembles_by_trace_id_and_finds_roots() {
        let traces = assemble(&sample_spans());
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].spans.len(), 3);
        assert_eq!(traces[0].root().unwrap().span_id, 10);
        assert_eq!(traces[0].duration_ns(), 5_000);
        assert_eq!(traces[0].processes(), vec!["load", "serve"]);
        assert_eq!(traces[1].faults(), vec!["garble_body"]);
    }

    #[test]
    fn phase_table_has_one_row_per_name() {
        let table = render_phase_table(&sample_spans());
        assert!(table.contains("drm.call"));
        assert!(table.contains("tcp.roundtrip"));
        assert!(table.contains("server.handle"));
        // Two drm.call spans aggregate into one row with count 2.
        let row = table.lines().find(|l| l.contains("drm.call")).unwrap();
        assert!(row.contains(" 2 "), "{row}");
    }

    #[test]
    fn tree_renders_nested_spans_with_processes() {
        let traces = assemble(&sample_spans());
        let tree = render_trace_tree(&traces[0]);
        assert!(tree.contains("processes: load -> serve"), "{tree}");
        let call_at = tree.find("drm.call").unwrap();
        let handle_at = tree.find("server.handle").unwrap();
        assert!(call_at < handle_at, "root renders before descendant:\n{tree}");
        // Deeper spans indent further.
        let handle_line = tree.lines().find(|l| l.contains("server.handle")).unwrap();
        let call_line = tree.lines().find(|l| l.contains("drm.call")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(handle_line) > indent(call_line));
    }

    #[test]
    fn fault_correlation_splits_clean_from_faulted() {
        let traces = assemble(&sample_spans());
        let section = render_fault_correlation(&traces);
        assert!(section.contains("1 clean"), "{section}");
        assert!(section.contains("1 faulted"), "{section}");
        assert!(section.contains("fault garble_body"), "{section}");
    }

    #[test]
    fn full_report_includes_all_sections() {
        let report = render_trace_report(&sample_spans());
        assert!(report.contains("5 spans across 2 traces"));
        assert!(report.contains("per-phase latency"));
        assert!(report.contains("slowest 2 traces"));
        assert!(report.contains("fault correlation"));
        assert_eq!(render_trace_report(&[]), "no trace spans found\n");
    }

    #[test]
    fn slowest_traces_rank_by_duration() {
        let report = render_trace_report(&sample_spans());
        // Trace 2 (9us) must render before trace 1 (5us).
        let t2 = report.find("trace 0000000000000002").unwrap();
        let t1 = report.find("trace 0000000000000001").unwrap();
        assert!(t2 < t1, "{report}");
    }
}
