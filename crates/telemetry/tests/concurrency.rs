//! Counter atomicity and shard integrity under thread fan-out: many
//! threads hammer the same collector through crossbeam's scoped
//! threads; nothing may be lost or double-counted.

use std::time::Duration;

use wideleak_telemetry::Collector;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counters_are_atomic_under_fanout() {
    let c = Collector::new();
    crossbeam::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|_| {
                for _ in 0..PER_THREAD {
                    c.incr("shared");
                }
                c.add("batched", PER_THREAD);
            });
        }
    })
    .unwrap();
    let snap = c.snapshot();
    let get = |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
    assert_eq!(get("shared"), THREADS as u64 * PER_THREAD);
    assert_eq!(get("batched"), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_observations_survive_fanout() {
    let c = Collector::new();
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let c = &c;
            s.spawn(move |_| {
                for i in 0..1_000u64 {
                    c.observe("lat", Duration::from_nanos((t as u64 + 1) * 100 + i));
                }
            });
        }
    })
    .unwrap();
    let snap = c.snapshot();
    let (_, h) = snap.histograms.iter().find(|(n, _)| n == "lat").unwrap();
    assert_eq!(h.count, THREADS as u64 * 1_000);
    assert!(h.p50_ns <= h.p90_ns && h.p90_ns <= h.p99_ns && h.p99_ns <= h.max_ns);
}

#[test]
fn spans_from_many_threads_all_land() {
    let c = Collector::new();
    crossbeam::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|_| {
                for _ in 0..200 {
                    let _g = c.span("worker.op");
                }
            });
        }
    })
    .unwrap();
    let snap = c.snapshot();
    assert_eq!(snap.spans.len(), THREADS * 200);
    // Ids are unique even though storage is sharded.
    let mut ids: Vec<u64> = snap.spans.iter().map(|s| s.id).collect();
    ids.dedup();
    assert_eq!(ids.len(), THREADS * 200);
    // Top-level spans opened on different threads have no parent.
    assert!(snap.spans.iter().all(|s| s.parent.is_none()));
}
