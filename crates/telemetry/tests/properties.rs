//! Property tests for the histogram: quantile ordering, bucket
//! boundary arithmetic and summary consistency on arbitrary inputs.

use std::time::Duration;

use proptest::prelude::*;
use wideleak_telemetry::metrics::{bucket_index, bucket_upper_bound, Histogram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_ordered(values in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let h = Histogram::default();
        for v in &values {
            h.observe(Duration::from_nanos(*v));
        }
        let s = h.summary();
        prop_assert!(s.p50_ns <= s.p90_ns);
        prop_assert!(s.p90_ns <= s.p99_ns);
        prop_assert!(s.p99_ns <= s.max_ns);
        prop_assert!(s.min_ns <= s.p50_ns.max(s.min_ns));
    }

    #[test]
    fn summary_counts_and_bounds_match_inputs(values in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let h = Histogram::default();
        for v in &values {
            h.observe(Duration::from_nanos(*v));
        }
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum_ns, values.iter().sum::<u64>());
        prop_assert_eq!(s.min_ns, *values.iter().min().unwrap());
        prop_assert_eq!(s.max_ns, *values.iter().max().unwrap());
    }

    #[test]
    fn every_value_falls_inside_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn quantile_never_exceeds_observed_max(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..50)) {
        let h = Histogram::default();
        for v in &values {
            h.observe(Duration::from_nanos(*v));
        }
        let max = *values.iter().max().unwrap();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert!(h.quantile_ns(q) <= max);
        }
    }
}
