//! The CVE-2021-0639 proof of concept, end to end (§IV-D).
//!
//! Recovers DRM-free media from every app still serving a discontinued
//! Widevine L3 device: memory-scan the keybox → unwrap the Device RSA
//! Key → replay the key ladder over hook dumps → decrypt the CENC
//! segments → repackage clear MP4 and "play it on another device".
//!
//! ```text
//! cargo run --release --example discontinued_device_attack
//! ```

use wideleak::attack::reconstruct::play_on_another_device;
use wideleak::attack::recover::attack_all;
use wideleak::device::catalog::DeviceModel;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

fn main() {
    println!("== CVE-2021-0639: discontinued-device attack ==\n");
    let n5 = DeviceModel::nexus_5();
    println!(
        "target device: {} — Android {}, CDM v{}, {} only, discontinued: {}\n",
        n5.name, n5.android_version, n5.cdm_version, n5.security_level, n5.discontinued
    );

    let eco = Ecosystem::new(EcosystemConfig::default());
    println!("attacking all 10 apps (victim-style playback + instrumentation)...\n");
    let outcomes = attack_all(&eco);

    println!(
        "{:<22} {:>7} {:>8} {:>6} {:>12}  outcome",
        "app", "keybox", "RSA key", "keys", "best quality"
    );
    println!("{}", "-".repeat(78));
    let mut pirated = 0;
    for o in &outcomes {
        let quality = o
            .media
            .as_ref()
            .and_then(|m| m.best_resolution())
            .map_or("-".to_owned(), |(w, h)| format!("{w}x{h}"));
        let outcome = match (&o.failure, o.succeeded()) {
            (None, true) => "DRM-FREE MEDIA RECOVERED".to_owned(),
            (Some(e), _) => format!("blocked: {e}"),
            _ => "blocked".to_owned(),
        };
        println!(
            "{:<22} {:>7} {:>8} {:>6} {:>12}  {outcome}",
            o.app_name,
            if o.keybox_recovered { "yes" } else { "no" },
            if o.rsa_key_recovered { "yes" } else { "no" },
            o.content_keys.len(),
            quality,
        );
        if o.succeeded() {
            pirated += 1;
        }
    }

    println!(
        "\n{pirated}/10 apps yielded DRM-free media (paper: 6, incl. Netflix, Hulu, Showtime)"
    );

    // Demonstrate 'playing on another device': parse the clear MP4 with
    // nothing but a container parser.
    if let Some(success) = outcomes.iter().find(|o| o.succeeded()) {
        let media = success.media.as_ref().expect("succeeded");
        let track = &media.tracks[0];
        let samples = play_on_another_device(track).expect("clear MP4 plays anywhere");
        println!(
            "\nreplayed {}'s {} on a 'personal computer': {} clear samples, {} bytes",
            success.app_name,
            track.rep_id,
            samples.len(),
            samples.iter().map(Vec::len).sum::<usize>()
        );
    }

    println!("\ncontrol experiment: same pipeline against a modern L1 device...");
    let l1 = wideleak::attack::recover::attack_app_on(&eco, "netflix", DeviceModel::pixel_6());
    println!(
        "  keybox recovered: {} ({})",
        l1.keybox_recovered,
        l1.failure.map_or("-".to_owned(), |e| e.to_string())
    );
}
