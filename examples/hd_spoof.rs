//! The §V-C future-work experiment: can stolen L3 credentials obtain HD
//! keys by simply *claiming* to be an L1 device?
//!
//! On the web, the `netflix-1080p` project showed the answer was yes —
//! browser deployments did not strongly verify the claimed level. On
//! Android the provisioning-time attestation clamps the claim. This
//! example runs the forged-L1 license request against both server
//! configurations.
//!
//! ```text
//! cargo run --release --example hd_spoof
//! ```

use wideleak::attack::hd_spoof::hd_spoof_experiment;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

fn main() {
    println!("== Forged-L1 license request with stolen L3 credentials ==\n");
    println!("step 1: run the CVE-2021-0639 pipeline on the discontinued device");
    println!("        (keybox memory scan + RSA key unwrap)");
    println!("step 2: sign a license request claiming SecurityLevel::L1\n");

    for (label, verify) in [
        ("Android-like server (attestation checked)", true),
        ("web-like server (netflix-1080p conditions)", false),
    ] {
        let eco = Ecosystem::new(EcosystemConfig {
            verify_attested_level: verify,
            ..EcosystemConfig::default()
        });
        let outcome = hd_spoof_experiment(&eco, "netflix").expect("spoof pipeline runs");
        println!("{label}:");
        println!("  keys obtained       : {}", outcome.content_keys.len());
        println!("  best video height   : {:?}", outcome.best_height);
        println!("  HD keys leaked      : {}\n", outcome.got_hd_keys());
    }

    println!("conclusion: the qHD cap of the paper's attack is a *server-side*");
    println!("property — exactly why the paper flags weak web-side verification");
    println!("as the open risk (Section V-C).");
}
