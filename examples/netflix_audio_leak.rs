//! The paper's headline Q2 finding: Netflix does not encrypt its audio
//! tracks — "audio in any language can be played anywhere without any
//! OTT account."
//!
//! This example downloads Netflix audio straight from the CDN with no
//! account, no license, and no DRM stack, and plays it.
//!
//! ```text
//! cargo run --release --example netflix_audio_leak
//! ```

use wideleak::bmff::fragment::{InitSegment, MediaSegment};
use wideleak::cenc::keys::MemoryKeyStore;
use wideleak::cenc::track::decrypt_segment;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::content::AUDIO_LANGS;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

fn main() {
    println!("== Netflix clear-audio leak (Q2) ==\n");
    let eco = Ecosystem::new(EcosystemConfig::default());
    let title = &eco.titles()[0];
    println!("target title: '{}' — no account, no license\n", title.name);

    for lang in AUDIO_LANGS {
        let init_path = format!("asset/netflix/{}/audio-{lang}/init", title.id);
        let init_bytes = eco
            .backend()
            .handle(&init_path, &[])
            .expect("CDN serves assets to anyone holding the URL");
        let init = InitSegment::from_bytes(&init_bytes).expect("valid init segment");
        println!("audio track [{lang}]:");
        println!("  init segment protected : {}", init.is_protected());

        let seg_path = format!("asset/netflix/{}/audio-{lang}/seg/1", title.id);
        let seg_bytes = eco.backend().handle(&seg_path, &[]).expect("segment download");
        let segment = MediaSegment::from_bytes(&seg_bytes).expect("valid media segment");
        println!("  senc (encryption info) : {}", segment.senc.is_some());

        // "Playing" it: an empty key store suffices because nothing is
        // encrypted.
        let samples = decrypt_segment(&init, &segment, &MemoryKeyStore::new())
            .expect("clear audio needs no keys");
        let bytes: usize = samples.iter().map(Vec::len).sum();
        println!("  played {} samples ({bytes} bytes) with ZERO keys\n", samples.len());
    }

    // Contrast: the same probe against an app that encrypts audio.
    let init_bytes = eco
        .backend()
        .handle(&format!("asset/showtime/{}/audio-en/init", title.id), &[])
        .expect("download");
    let init = InitSegment::from_bytes(&init_bytes).expect("valid init");
    println!("contrast — Showtime audio init segment protected: {}", init.is_protected());
    let seg_bytes = eco
        .backend()
        .handle(&format!("asset/showtime/{}/audio-en/seg/1", title.id), &[])
        .expect("download");
    let segment = MediaSegment::from_bytes(&seg_bytes).expect("valid segment");
    let refused = decrypt_segment(&init, &segment, &MemoryKeyStore::new());
    println!("Showtime audio without keys: {refused:?}");
}
