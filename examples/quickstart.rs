//! Quickstart: boot the ecosystem, play a protected title on a modern
//! device, and watch the Figure-1 sequence happen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wideleak::device::catalog::DeviceModel;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

fn main() {
    println!("== WideLeak quickstart ==\n");
    println!("booting the OTT ecosystem (servers, CDN, 10 app profiles)...");
    let eco = Ecosystem::new(EcosystemConfig::default());

    println!("booting a modern TEE-capable handset ({})...", DeviceModel::pixel_6().name);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    println!("  CDM v{} at {}\n", stack.cdm.version(), stack.cdm.security_level());

    println!("installing Showtime and subscribing as 'alice'...");
    let app = eco.install_app(&stack, "showtime", "alice");

    println!("playing '{}'...\n", eco.titles()[0].name);
    let outcome = app.play(&eco.titles()[0].id).expect("playback succeeds");

    println!("playback summary:");
    println!("  platform Widevine used : {}", outcome.used_platform_widevine);
    println!("  resolution             : {}x{}", outcome.resolution.0, outcome.resolution.1);
    println!("  video samples decoded  : {}", outcome.video_samples.len());
    println!("  audio samples decoded  : {}", outcome.audio_samples.len());
    println!(
        "  subtitles              : {}",
        outcome.subtitle_text.as_deref().map_or("(none)", |_| "clear WebVTT")
    );

    let trace = outcome.trace.expect("platform playback records a trace");
    println!("\nFigure-1 protocol sequence ({} steps):", trace.steps().len());
    for (i, step) in trace.steps().iter().enumerate() {
        println!("  {:>2}. {:?}", i + 1, step);
    }
    println!("\nsequence matches the paper's Figure 1: {}", trace.matches_figure_1());
}
