//! Q4: which apps still serve discontinued devices?
//!
//! Plays one title per app on three device generations and tabulates the
//! outcomes — the availability-versus-security trade-off of §IV-C Q4.
//!
//! ```text
//! cargo run --release --example revocation_matrix
//! ```

use wideleak::device::catalog::DeviceModel;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::ott::OttError;

fn main() {
    println!("== Q4 revocation matrix ==\n");
    let eco = Ecosystem::new(EcosystemConfig::default());
    let title = eco.titles()[0].id.clone();

    let devices = [
        ("Pixel 6 (L1, current)", DeviceModel::pixel_6()),
        ("Midrange (L3, current)", DeviceModel::midrange_l3()),
        ("Nexus 5 (L3, discontinued)", DeviceModel::nexus_5()),
    ];

    print!("{:<22}", "app");
    for (name, _) in &devices {
        print!("  {name:<28}");
    }
    println!();
    println!("{}", "-".repeat(22 + devices.len() * 30));

    for profile in eco.profiles().to_vec() {
        print!("{:<22}", profile.name);
        for (_, model) in &devices {
            let stack = eco.boot_device(model.clone(), false);
            let app = eco.install_app(&stack, profile.slug, "matrix-user");
            let cell = match app.play(&title) {
                Ok(o) if o.used_platform_widevine => {
                    format!("plays {}x{}", o.resolution.0, o.resolution.1)
                }
                Ok(o) => format!("plays {}x{} (custom DRM)", o.resolution.0, o.resolution.1),
                Err(OttError::DeviceRevoked { .. }) => "REVOKED at provisioning".to_owned(),
                Err(e) => format!("error: {e}"),
            };
            print!("  {cell:<28}");
        }
        println!();
    }

    println!(
        "\nrevocation floor: CDM >= {} (Nexus 5 ships v{})",
        EcosystemConfig::default().revocation.min_cdm_version,
        DeviceModel::nexus_5().cdm_version,
    );
    println!("only Disney+, HBO Max and Starz enforce it — the rest choose reach over security.");
}
