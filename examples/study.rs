//! Reproduces Table I: runs the complete WideLeak study over the ten
//! evaluated apps and prints the table plus the §IV-C insights.
//!
//! ```text
//! cargo run --release --example study
//! ```

use wideleak::monitor::report::{render_insights, render_table_1};
use wideleak::ott::ecosystem::EcosystemConfig;

fn main() {
    println!("== WideLeak study: Widevine usage and asset protections by OTTs ==\n");
    println!("running 10 apps x (modern L1 device + discontinued L3 device)...\n");

    let report = wideleak::run_full_study(EcosystemConfig::default()).expect("study completes");

    println!("Table I — Widevine usage and asset protections by OTTs\n");
    println!("{}", render_table_1(&report));
    println!("Insights (Section IV-C):\n{}", render_insights(&report));

    // The paper's most surprising single finding, called out explicitly.
    let netflix = report.app("Netflix").expect("netflix studied");
    println!(
        "Netflix URI secure channel observed and pierced via generic-decrypt dumps: {}",
        netflix.uri_channel_observed
    );
}
