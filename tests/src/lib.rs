//! Cross-crate integration tests for the WideLeak reproduction.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! shared fixtures.

use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

/// A fast ecosystem fixture shared by the integration tests.
pub fn fast_ecosystem() -> Ecosystem {
    Ecosystem::new(EcosystemConfig::fast_for_tests())
}
