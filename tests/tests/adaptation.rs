//! The adaptive-bitrate plane, end to end: the adaptation study must be
//! a pure function of its seed, quality switches must never corrupt the
//! decrypted output, the rate controller must respect its bandwidth
//! budget whenever a cheaper representation exists, constriction must
//! force downswitches whose license churn matches the key-rotation
//! policy, and attaching a bandwidth model must leave the classic
//! fixed-representation paths (Table I) byte-identical.

use proptest::prelude::*;
use wideleak::monitor::adapt::{render_adapt, run_adapt_study};
use wideleak::monitor::report::render_table_1;
use wideleak::monitor::study::run_study;
use wideleak::ott::adapt::{AdaptConfig, RateAdaptationController};
use wideleak::ott::bandwidth::{BandwidthConfig, BandwidthSchedule};
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

/// A 4 Mbps link that constricts to 1.2 Mbps — below the 720p tier's
/// declared 1.44 Mbps — twenty virtual seconds in.
fn constricted() -> BandwidthConfig {
    BandwidthConfig {
        schedule: BandwidthSchedule::steps(vec![(0, 4_000_000), (20_000, 1_200_000)]),
        burst_bits: 2_000_000,
        spread_permille: 100,
    }
}

fn eco_with_bandwidth(bandwidth: Option<BandwidthConfig>) -> Ecosystem {
    let mut config = EcosystemConfig::fast_for_tests();
    config.bandwidth = bandwidth;
    Ecosystem::new(config)
}

fn play_one(eco: &Ecosystem, slug: &str) -> wideleak::ott::adapt::AdaptiveOutcome {
    let stack = eco.boot_device(wideleak::device::catalog::DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, slug, "adaptation-test");
    let mut link = eco.adaptive_link();
    app.play_adaptive("title-001", &AdaptConfig::default(), &mut link)
        .expect("adaptive playback succeeds")
}

#[test]
fn adaptation_study_is_deterministic_per_seed() {
    let first = render_adapt(&run_adapt_study(11, true));
    let second = render_adapt(&run_adapt_study(11, true));
    assert_eq!(first, second, "same seed renders byte-identically");
    let other = render_adapt(&run_adapt_study(12, true));
    assert_ne!(first, other, "a different seed shifts the link spreads");
}

#[test]
fn decrypted_output_is_byte_identical_across_quality_switches() {
    // Two fresh ecosystems, same seed: the constrained sessions must
    // replay the same switch schedule AND the same decrypted bytes.
    let a = play_one(&eco_with_bandwidth(Some(constricted())), "netflix");
    let b = play_one(&eco_with_bandwidth(Some(constricted())), "netflix");
    assert!(a.switches() > 0, "the constricted link forces switches");
    assert_eq!(a.rep_sequence, b.rep_sequence);
    assert_eq!(a.video_samples, b.video_samples);

    // Against an unconstrained session: wherever the two sessions chose
    // the same representation for the same chunk, the decrypted sample
    // must be byte-identical — switching tiers (and rotating keys) must
    // not perturb what any individual segment decrypts to.
    let free = play_one(&eco_with_bandwidth(None), "netflix");
    assert_eq!(free.rep_sequence.len(), a.rep_sequence.len());
    let mut compared = 0;
    for (i, rep) in a.rep_sequence.iter().enumerate() {
        if rep == &free.rep_sequence[i] {
            assert_eq!(a.video_samples[i], free.video_samples[i], "chunk {i} ({rep}) differs");
            compared += 1;
        }
    }
    assert!(compared > 0, "the sessions share at least one (chunk, rep) cell");
}

#[test]
fn constriction_forces_downswitches_and_license_churn_matches_key_policy() {
    // Netflix exposes key ids in metadata: every representation epoch is
    // a narrow per-tier license, so licenses track switches exactly.
    let visible = play_one(&eco_with_bandwidth(Some(constricted())), "netflix");
    assert!(visible.switches_down > 0, "constriction forces a downswitch: {visible:?}");
    assert_eq!(
        visible.license_fetches,
        visible.switches() + 1,
        "one narrow license per representation epoch"
    );
    assert!(!visible.license_times_ms.is_empty());

    // Hulu hides key ids: one open request covers every tier, so the
    // session is reused across the very same switch schedule.
    let hidden = play_one(&eco_with_bandwidth(Some(constricted())), "hulu");
    assert!(hidden.switches_down > 0);
    assert_eq!(hidden.license_fetches, 1, "an open license survives every switch");
}

#[test]
fn unconstrained_adaptive_playback_climbs_to_the_top_tier() {
    let outcome = play_one(&eco_with_bandwidth(None), "netflix");
    assert_eq!(outcome.switches_down, 0);
    assert_eq!(
        outcome.rep_sequence.last().map(String::as_str),
        Some("video-1080p"),
        "headroom climbs the full ladder: {:?}",
        outcome.rep_sequence
    );
    // Only startup fill may stall; one-a-millisecond rounding at worst.
    assert!(outcome.rebuffer_permille() < 5, "rebuffer {} permille", outcome.rebuffer_permille());
}

#[test]
fn bandwidth_model_leaves_table_1_untouched() {
    // The bandwidth plane only gates adaptive sessions: the classic
    // fixed-representation study must render byte-identically whether or
    // not a (constricting!) model is attached.
    let plain = run_study(&eco_with_bandwidth(None)).expect("study runs");
    let constrained = run_study(&eco_with_bandwidth(Some(constricted()))).expect("study runs");
    assert_eq!(render_table_1(&plain), render_table_1(&constrained));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The controller never picks a representation whose declared
    /// bandwidth exceeds the safety-margined budget while a cheaper one
    /// exists — across arbitrary ladders and whole decision sequences.
    #[test]
    fn controller_never_overspends_when_a_cheaper_rep_exists(
        ladder in proptest::collection::vec(1_000u64..10_000_000, 1..6),
        samples in proptest::collection::vec((0u64..12_000_000, 0u64..20_000), 1..12),
    ) {
        let mut ladder = ladder;
        ladder.sort_unstable();
        ladder.dedup();
        let config = AdaptConfig::default();
        let mut controller = RateAdaptationController::new(&config);
        for (estimate, buffer_ms) in samples {
            let chosen = controller.decide(&ladder, estimate, buffer_ms);
            prop_assert!(chosen < ladder.len());
            if chosen > 0 {
                prop_assert!(
                    ladder[chosen] <= controller.budget_bps(estimate),
                    "picked {} bps on a {} bps budget with {} cheaper tiers",
                    ladder[chosen],
                    controller.budget_bps(estimate),
                    chosen
                );
            }
        }
    }
}
