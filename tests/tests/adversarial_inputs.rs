//! Adversarial-input robustness: every parser in the stack must fail
//! *gracefully* on arbitrary bytes — DRM components face hostile inputs
//! by definition, and a panic in `mediadrmserver` is a denial of service.

use proptest::prelude::*;
use wideleak::bmff::fragment::{InitSegment, MediaSegment};
use wideleak::bmff::types::{Pssh, Senc, Tenc};
use wideleak::bmff::Mp4Box;
use wideleak::cdm::keybox::Keybox;
use wideleak::cdm::messages::{
    LicenseRequest, LicenseResponse, ProvisioningRequest, ProvisioningResponse,
};
use wideleak::cdm::wire::TlvReader;
use wideleak::dash::mpd::Mpd;
use wideleak::dash::XmlElement;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mp4_box_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Mp4Box::parse(&bytes);
        let _ = Mp4Box::parse_sequence(&bytes);
    }

    #[test]
    fn typed_box_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Pssh::from_payload(&bytes);
        let _ = Tenc::from_payload(&bytes);
        let _ = Senc::from_payload(&bytes);
    }

    #[test]
    fn segment_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = InitSegment::from_bytes(&bytes);
        let _ = MediaSegment::from_bytes(&bytes);
    }

    #[test]
    fn tlv_and_message_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = TlvReader::parse(&bytes);
        let _ = ProvisioningRequest::parse(&bytes);
        let _ = ProvisioningResponse::parse(&bytes);
        let _ = LicenseRequest::parse(&bytes);
        let _ = LicenseResponse::parse(&bytes);
    }

    #[test]
    fn keybox_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Keybox::parse(&bytes);
    }

    #[test]
    fn xml_parser_never_panics(input in "\\PC*") {
        let _ = XmlElement::parse(&input);
        let _ = Mpd::parse(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<".to_owned()),
                Just(">".to_owned()),
                Just("</".to_owned()),
                Just("/>".to_owned()),
                Just("&".to_owned()),
                Just(";".to_owned()),
                Just("=\"".to_owned()),
                Just("<?xml".to_owned()),
                Just("<!--".to_owned()),
                "[a-zA-Z]{1,8}".prop_map(|s| s),
            ],
            0..30,
        ),
    ) {
        let soup = parts.concat();
        let _ = XmlElement::parse(&soup);
    }

    #[test]
    fn bit_flipped_boxes_never_panic(
        seed_payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..1024,
        flip_bit in 0u8..8,
    ) {
        // Start from a *valid* structure, then corrupt one bit: the
        // nastiest corpus for parsers that trust earlier fields.
        let pssh = Pssh::widevine(vec![], seed_payload);
        let init = InitSegment::protected(
            1,
            wideleak::bmff::fragment::TrackKind::Video,
            wideleak::bmff::FourCc(*b"cenc"),
            Tenc::cenc(wideleak::bmff::types::KeyId([7; 16])),
            vec![pssh],
        );
        let mut bytes = init.to_bytes();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = InitSegment::from_bytes(&bytes);
        let _ = Mp4Box::parse_sequence(&bytes);
    }
}
