//! The sharded-campaign differential battery: the merged report is a
//! pure function of (spec, seed, catalog), so its rendered bytes must
//! be identical across worker counts and across same-seed re-runs; a
//! lost worker must surface as a typed error (never a hang) and leave
//! no orphaned processes behind.
//!
//! These tests spawn the real `wideleak` binary in `serve --worker`
//! mode, so they exercise the whole stack: process spawn, the wire-v3
//! campaign control channel, per-shard measurement, and the exact
//! merge.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use wideleak::android_drm::campaign::{CampaignError, LatencyHistogram, HISTOGRAM_BUCKETS};
use wideleak::load::LatencySummary;
use wideleak::monitor::campaign::{run_campaign, CampaignConfig, WorkerCommand, WorkerProcess};

/// The workspace `wideleak` binary next to the test executable
/// (`target/debug/deps/campaign-*` → `target/debug/wideleak`). A
/// workspace-level `cargo test` always builds it; fail loudly when a
/// partial build did not.
fn wideleak_bin() -> WorkerCommand {
    let mut path: PathBuf = std::env::current_exe().expect("test executable path");
    path.pop(); // the test binary itself
    path.pop(); // deps/
    path.push("wideleak");
    assert!(
        path.exists(),
        "worker binary {} not built; run a workspace-level `cargo test` or `cargo build -p wideleak`",
        path.display()
    );
    WorkerCommand { program: path, args: Vec::new() }
}

#[test]
fn report_bytes_are_invariant_across_worker_counts_and_reruns() {
    let cmd = wideleak_bin();
    let render = |workers: usize| {
        let config = CampaignConfig { workers, ..CampaignConfig::quick(2022) };
        run_campaign(&config, &cmd).expect("campaign runs clean").render()
    };
    let one = render(1);
    let two = render(2);
    let four = render(4);
    assert_eq!(one, two, "1-worker and 2-worker reports diverge");
    assert_eq!(two, four, "2-worker and 4-worker reports diverge");
    // Same seed, same bytes — scheduling and arrival order are invisible.
    assert_eq!(two, render(2), "same-seed re-run diverges");
    // The report is genuinely seed-dependent, not constant.
    let config = CampaignConfig { workers: 2, ..CampaignConfig::quick(7) };
    let other = run_campaign(&config, &cmd).expect("campaign runs clean").render();
    assert_ne!(two, other, "reports ignore the seed");
}

#[test]
fn killed_worker_is_a_typed_shard_loss_and_a_retry_recovers() {
    let cmd = wideleak_bin();
    let mut config = CampaignConfig::quick(2022);
    config.workers = 2;
    // Device 30 lands in shard 1 (24..48): that worker dies mid-shard.
    config.spec.kill_at_device = Some(30);
    let started = Instant::now();
    let err = run_campaign(&config, &cmd).expect_err("a dead worker cannot yield a report");
    assert!(
        matches!(err, CampaignError::ShardLost { shard_id: 1 }),
        "expected ShardLost for shard 1, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "shard loss took {:?} to surface — the coordinator hung",
        started.elapsed()
    );
    // A clean retry with the same seed produces the canonical report.
    config.spec.kill_at_device = None;
    let retried = run_campaign(&config, &cmd).expect("retry runs clean").render();
    let reference =
        run_campaign(&CampaignConfig::quick(2022), &cmd).expect("reference runs clean").render();
    assert_eq!(retried, reference, "post-crash retry diverges from the canonical report");
}

#[test]
fn dropped_worker_guard_kills_and_reaps_the_child() {
    let worker = WorkerProcess::spawn(&wideleak_bin()).expect("worker spawns");
    let pid = worker.pid();
    assert!(
        std::path::Path::new(&format!("/proc/{pid}")).exists(),
        "worker {pid} should be alive while the guard is held"
    );
    drop(worker);
    // Drop kills and reaps synchronously: the pid is gone — not even a
    // zombie — the moment drop returns.
    assert!(
        !std::path::Path::new(&format!("/proc/{pid}")).exists(),
        "worker {pid} survived its drop guard"
    );
}

#[test]
fn worker_exits_when_the_coordinator_pipe_closes() {
    // Spawn a worker by hand (not via the guard) and sever only its
    // stdin, simulating a coordinator killed with SIGKILL: the pipe
    // closes without any Shutdown call, and the watchdog must exit the
    // worker on its own.
    let cmd = wideleak_bin();
    let mut child = Command::new(&cmd.program)
        .args(["serve", "--worker", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("worker spawns");
    let mut ready = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut ready)
        .expect("ready line");
    assert!(ready.starts_with("WORKER_READY "), "bad ready line {ready:?}");
    drop(child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(10);
    let exited = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status.success(),
            None if Instant::now() > deadline => break false,
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    if !exited {
        let _ = child.kill();
        let _ = child.wait();
        panic!("worker did not exit within 10s of its stdin closing");
    }
}

/// The raw-sample oracle: nearest-rank statistics over the clamped
/// concatenation of every shard's samples, computed the way
/// `wideleak-load` sorts raw latencies.
fn oracle(shards: &[Vec<u64>]) -> LatencySummary {
    let clamp = HISTOGRAM_BUCKETS as u64 - 1;
    let mut all: Vec<u64> = shards.iter().flatten().map(|&ms| ms.min(clamp)).collect();
    if all.is_empty() {
        return LatencySummary::default();
    }
    all.sort_unstable();
    let n = all.len();
    let q = |num: usize, den: usize| all[(n - 1) * num / den];
    LatencySummary {
        count: n as u64,
        min_ms: all[0],
        mean_ms: all.iter().sum::<u64>() / n as u64,
        p50_ms: q(50, 100),
        p95_ms: q(95, 100),
        p99_ms: q(99, 100),
        max_ms: all[n - 1],
    }
}

/// Builds one histogram per shard and merges them pairwise, as the
/// coordinator does.
fn merged(shards: &[Vec<u64>]) -> LatencyHistogram {
    let mut total = LatencyHistogram::new();
    for shard in shards {
        let mut h = LatencyHistogram::new();
        for &ms in shard {
            h.record(ms);
        }
        total.merge(&h);
    }
    total
}

#[test]
fn merge_oracle_edge_cases() {
    // All shards empty.
    assert_eq!(LatencySummary::from_histogram(&merged(&[vec![], vec![]])), oracle(&[vec![]]));
    // A single sample in one shard, the others empty.
    let shards = vec![vec![], vec![42], vec![]];
    assert_eq!(LatencySummary::from_histogram(&merged(&shards)), oracle(&shards));
    // Clamped outliers collapse onto the last bucket in both views.
    let shards = vec![vec![100_000, 3], vec![511, 512]];
    let summary = LatencySummary::from_histogram(&merged(&shards));
    assert_eq!(summary, oracle(&shards));
    assert_eq!(summary.max_ms, HISTOGRAM_BUCKETS as u64 - 1);
}

proptest::proptest! {
    /// Satellite 2: for any sharding of any sample set, the percentile
    /// summary of the merged histogram equals the nearest-rank summary
    /// of the concatenated raw samples. Width-1ms buckets make the
    /// merge *exact*, not approximate — this is what lets the campaign
    /// report stay byte-identical across worker counts.
    #[test]
    fn merged_histogram_percentiles_match_concatenated_samples(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..600, 0..40),
            0..6,
        )
    ) {
        proptest::prop_assert_eq!(
            LatencySummary::from_histogram(&merged(&shards)),
            oracle(&shards)
        );
    }
}
