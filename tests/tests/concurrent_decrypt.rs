//! The parallel DRM stack, end to end: N app clients decrypting on
//! distinct sessions through the pooled `ThreadedBinder` must produce
//! exactly the plaintext a single-threaded `InProcessBinder` does, and
//! distinct-session transactions must actually overlap in the server
//! (not just queue behind a global lock).

use std::sync::{Arc, Barrier};

use wideleak::android_drm::binder::{DrmCall, InProcessBinder, ThreadedBinder, Transport};
use wideleak::android_drm::server::MediaDrmServer;
use wideleak::bmff::types::{KeyId, Subsample, WIDEVINE_SYSTEM_ID};
use wideleak::cdm::cdm::Cdm;
use wideleak::cdm::messages::{
    LicenseRequest, LicenseResponse, ProvisioningRequest, ProvisioningResponse,
};
use wideleak::cdm::oemcrypto::{L3OemCrypto, OemCrypto, SampleCrypto};
use wideleak::cdm::wire::TlvWriter;
use wideleak::cdm::CdmError;
use wideleak::device::catalog::{CdmVersion, SecurityLevel};
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::ecosystem::Ecosystem;
use wideleak_tests::fast_ecosystem;

const CLIENTS: usize = 4;
const SAMPLES_PER_CLIENT: usize = 8;

/// Boots a provisioned L3 Media DRM server. Both transports get one
/// built from the same device tag, so their key ladders are identical.
fn boot_server(eco: &Ecosystem) -> MediaDrmServer {
    let backend = L3OemCrypto::new(
        CdmVersion::new(16, 0, 0),
        Arc::new(HookEngine::new()),
        Arc::new(ProcessMemory::new("mediaserver")),
    );
    backend.install_keybox(eco.trust().issue_keybox("concurrent-decrypt")).unwrap();
    let mut server = MediaDrmServer::new();
    server.register_plugin(
        WIDEVINE_SYSTEM_ID,
        Arc::new(Cdm::builder().backend(Arc::new(backend)).build()),
    );
    server
}

fn provision(binder: &dyn Transport, eco: &Ecosystem) {
    let req = binder
        .transact(DrmCall::GetProvisionRequest { nonce: [9; 16] })
        .unwrap()
        .into_bytes()
        .unwrap();
    let response = eco.backend().handle("provision/ocs", &req).unwrap();
    binder.transact(DrmCall::ProvideProvisionResponse { nonce: [9; 16], response }).unwrap();
}

fn license_session(binder: &dyn Transport, eco: &Ecosystem, token: &str, tag: u8) -> (u32, KeyId) {
    let sid = binder
        .transact(DrmCall::OpenSession { nonce: [tag; 16] })
        .unwrap()
        .into_session_id()
        .unwrap();
    let req = binder
        .transact(DrmCall::GetKeyRequest {
            session_id: sid,
            content_id: "title-001".to_owned(),
            key_ids: vec![],
        })
        .unwrap()
        .into_bytes()
        .unwrap();
    let mut w = TlvWriter::new();
    w.string(1, token).bytes(2, &req);
    let response = eco.backend().handle("license/ocs/title-001", &w.finish()).unwrap();
    let kids = binder
        .transact(DrmCall::ProvideKeyResponse { session_id: sid, response })
        .unwrap()
        .into_key_ids()
        .unwrap();
    (sid, kids[0])
}

/// The sample every (client, index) pair decrypts: deterministic and
/// distinct per pair, so a cross-session mixup cannot go unnoticed.
fn sample(client: usize, index: usize) -> (SampleCrypto, Vec<u8>) {
    let iv = [(client * 16 + index) as u8; 8];
    let data = (0..256).map(|b| (b as u8) ^ (client as u8) ^ (index as u8 * 3)).collect();
    (SampleCrypto::Cenc { iv }, data)
}

fn decrypt(binder: &dyn Transport, sid: u32, kid: KeyId, client: usize, index: usize) -> Vec<u8> {
    let (crypto, data) = sample(client, index);
    binder
        .transact(DrmCall::DecryptSample { session_id: sid, kid, crypto, data, subsamples: vec![] })
        .unwrap()
        .into_bytes()
        .unwrap()
}

/// N clients hammering the pooled binder on distinct sessions recover
/// byte-for-byte the plaintexts a single-threaded in-process transport
/// produces for the same samples.
#[test]
fn pooled_decrypt_matches_single_threaded_byte_for_byte() {
    let eco = fast_ecosystem();
    let token = eco.accounts().subscribe("ocs", "user-conc");

    // Reference run: same server build, synchronous transport.
    let inproc = InProcessBinder::new(boot_server(&eco));
    provision(&inproc, &eco);
    let mut expected = Vec::new();
    let mut ref_kid = None;
    for client in 0..CLIENTS {
        let (sid, kid) = license_session(&inproc, &eco, &token, client as u8 + 1);
        ref_kid.get_or_insert(kid);
        expected.push(
            (0..SAMPLES_PER_CLIENT)
                .map(|i| decrypt(&inproc, sid, kid, client, i))
                .collect::<Vec<_>>(),
        );
    }

    // Parallel run: one pooled binder, one thread per client.
    let pooled = Arc::new(ThreadedBinder::builder(boot_server(&eco)).workers(CLIENTS).spawn());
    provision(pooled.as_ref(), &eco);
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let binder = Arc::clone(&pooled);
            let (sid, kid) = license_session(binder.as_ref(), &eco, &token, client as u8 + 1);
            assert_eq!(Some(kid), ref_kid, "both stacks licensed the same content key");
            std::thread::spawn(move || {
                (0..SAMPLES_PER_CLIENT)
                    .map(|i| decrypt(binder.as_ref(), sid, kid, client, i))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for (client, handle) in clients.into_iter().enumerate() {
        assert_eq!(
            handle.join().unwrap(),
            expected[client],
            "client {client}: pooled plaintexts diverge from the single-threaded reference"
        );
    }
}

/// An OEMCrypto backend whose `decrypt_sample` blocks until `CLIENTS`
/// calls are inside it at once. Only a transport that really executes
/// distinct-session transactions in parallel can finish this; the old
/// single-thread server loop (or a CDM with one global session mutex)
/// would wedge on the first call.
struct RendezvousBackend {
    barrier: Barrier,
    next_session: std::sync::atomic::AtomicU32,
}

impl OemCrypto for RendezvousBackend {
    fn security_level(&self) -> SecurityLevel {
        SecurityLevel::L3
    }
    fn cdm_version(&self) -> CdmVersion {
        CdmVersion::new(16, 0, 0)
    }
    fn advance_clock(&self, _: u64) -> Result<(), CdmError> {
        Ok(())
    }
    fn install_keybox(&self, _: wideleak::cdm::keybox::Keybox) -> Result<(), CdmError> {
        Ok(())
    }
    fn device_id(&self) -> Result<Vec<u8>, CdmError> {
        Ok(b"rendezvous".to_vec())
    }
    fn is_provisioned(&self) -> bool {
        true
    }
    fn provisioning_request(&self, _: [u8; 16]) -> Result<ProvisioningRequest, CdmError> {
        unimplemented!("not exercised")
    }
    fn install_rsa_key(&self, _: [u8; 16], _: &ProvisioningResponse) -> Result<(), CdmError> {
        unimplemented!("not exercised")
    }
    fn open_session(&self, _: [u8; 16]) -> Result<u32, CdmError> {
        Ok(self.next_session.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
    }
    fn close_session(&self, _: u32) -> Result<(), CdmError> {
        Ok(())
    }
    fn license_request(&self, _: u32, _: &str, _: &[KeyId]) -> Result<LicenseRequest, CdmError> {
        unimplemented!("not exercised")
    }
    fn load_license(&self, _: u32, _: &LicenseResponse) -> Result<Vec<KeyId>, CdmError> {
        unimplemented!("not exercised")
    }
    fn decrypt_sample(
        &self,
        _: u32,
        _: &KeyId,
        _: &SampleCrypto,
        data: &[u8],
        _: &[Subsample],
    ) -> Result<Vec<u8>, CdmError> {
        // Every decrypt waits for CLIENTS-way overlap before returning.
        self.barrier.wait();
        Ok(data.to_vec())
    }
    fn generic_encrypt(
        &self,
        _: u32,
        _: &KeyId,
        _: [u8; 16],
        _: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        unimplemented!("not exercised")
    }
    fn generic_decrypt(
        &self,
        _: u32,
        _: &KeyId,
        _: [u8; 16],
        _: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        unimplemented!("not exercised")
    }
    fn generic_sign(&self, _: u32, _: &KeyId, _: &[u8]) -> Result<Vec<u8>, CdmError> {
        unimplemented!("not exercised")
    }
    fn generic_verify(&self, _: u32, _: &KeyId, _: &[u8], _: &[u8]) -> Result<(), CdmError> {
        unimplemented!("not exercised")
    }
}

/// Distinct-session decrypts overlap inside the server: CLIENTS calls
/// rendezvous on a barrier held *inside* `decrypt_sample`, which only a
/// genuinely parallel transport can satisfy. Works on any core count —
/// blocked threads yield the CPU — so it pins the tentpole property
/// even where wall-clock scaling is core-bound.
#[test]
fn distinct_session_decrypts_overlap_in_the_server() {
    let backend = RendezvousBackend {
        barrier: Barrier::new(CLIENTS),
        next_session: std::sync::atomic::AtomicU32::new(1),
    };
    let mut server = MediaDrmServer::new();
    server.register_plugin(
        WIDEVINE_SYSTEM_ID,
        Arc::new(Cdm::builder().backend(Arc::new(backend)).build()),
    );
    let binder = Arc::new(ThreadedBinder::builder(server).workers(CLIENTS).spawn());

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    for c in 0..CLIENTS {
        let binder = Arc::clone(&binder);
        let done = done_tx.clone();
        std::thread::spawn(move || {
            let sid = binder
                .transact(DrmCall::OpenSession { nonce: [c as u8; 16] })
                .unwrap()
                .into_session_id()
                .unwrap();
            let out = decrypt(binder.as_ref(), sid, KeyId([5; 16]), c, 0);
            done.send(out).unwrap();
        });
    }
    drop(done_tx);

    // A transport that serialises sessions never reaches the barrier's
    // count and would hang; bound the wait so that regression fails
    // loudly instead.
    for _ in 0..CLIENTS {
        done_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("decrypts never overlapped: transactions are serialised");
    }
}
