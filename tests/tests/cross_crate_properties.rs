//! Property-based tests spanning crate boundaries: packaging/decryption
//! round trips, protocol codec stability, ladder determinism.

use proptest::prelude::*;
use wideleak::bmff::fragment::{InitSegment, MediaSegment, TrackKind};
use wideleak::bmff::types::{KeyId, Tenc};
use wideleak::cdm::ladder::{derive_key_128, derive_session_keys, labels};
use wideleak::cdm::messages::{KeyControl, KeyEntry, LicenseRequest, LicenseResponse};
use wideleak::cenc::keys::{ContentKey, MemoryKeyStore};
use wideleak::cenc::track::{decrypt_segment, encrypt_segment, Scheme};
use wideleak::device::catalog::{CdmVersion, SecurityLevel};

fn samples_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packaging_round_trip_cenc(
        samples in samples_strategy(),
        key in any::<[u8; 16]>(),
        kid in any::<[u8; 16]>(),
        seq in 1u32..100,
        seed in any::<u64>(),
    ) {
        let key = ContentKey(key);
        let kid = KeyId(kid);
        let tenc = Tenc::cenc(kid);
        let init = InitSegment::protected(1, TrackKind::Video, Scheme::Cenc.fourcc(), tenc.clone(), vec![]);
        let seg = encrypt_segment(Scheme::Cenc, &key, &tenc, TrackKind::Video, 1, seq, &samples, seed).unwrap();
        // Serialize both sides, parse back, decrypt.
        let init2 = InitSegment::from_bytes(&init.to_bytes()).unwrap();
        let seg2 = MediaSegment::from_bytes(&seg.to_bytes()).unwrap();
        let mut store = MemoryKeyStore::new();
        store.insert(kid, key);
        prop_assert_eq!(decrypt_segment(&init2, &seg2, &store).unwrap(), samples);
    }

    #[test]
    fn packaging_round_trip_cbcs(
        samples in samples_strategy(),
        key in any::<[u8; 16]>(),
        kid in any::<[u8; 16]>(),
        civ in any::<[u8; 16]>(),
    ) {
        let key = ContentKey(key);
        let kid = KeyId(kid);
        let tenc = Tenc::cbcs(kid, civ);
        let init = InitSegment::protected(2, TrackKind::Audio, Scheme::Cbcs.fourcc(), tenc.clone(), vec![]);
        let seg = encrypt_segment(Scheme::Cbcs, &key, &tenc, TrackKind::Audio, 2, 1, &samples, 0).unwrap();
        let mut store = MemoryKeyStore::new();
        store.insert(kid, key);
        prop_assert_eq!(decrypt_segment(&init, &seg, &store).unwrap(), samples);
    }

    #[test]
    fn wrong_key_never_round_trips(
        samples in samples_strategy(),
        key_a in any::<[u8; 16]>(),
        key_b in any::<[u8; 16]>(),
        kid in any::<[u8; 16]>(),
    ) {
        prop_assume!(key_a != key_b);
        // Only meaningful when some sample is long enough to be encrypted.
        prop_assume!(samples.iter().any(|s| s.len() > 16));
        let kid = KeyId(kid);
        let tenc = Tenc::cenc(kid);
        let seg = encrypt_segment(Scheme::Cenc, &ContentKey(key_a), &tenc, TrackKind::Video, 1, 1, &samples, 7).unwrap();
        let init = InitSegment::protected(1, TrackKind::Video, Scheme::Cenc.fourcc(), tenc, vec![]);
        let mut store = MemoryKeyStore::new();
        store.insert(kid, ContentKey(key_b));
        let out = decrypt_segment(&init, &seg, &store).unwrap();
        prop_assert_ne!(out, samples);
    }

    #[test]
    fn license_request_codec_round_trip(
        device_id in proptest::collection::vec(any::<u8>(), 0..64),
        content_id in "[a-z0-9-]{1,30}",
        kids in proptest::collection::vec(any::<[u8; 16]>(), 0..5),
        nonce in any::<[u8; 16]>(),
        sig in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let req = LicenseRequest {
            device_id,
            content_id,
            key_ids: kids.into_iter().map(KeyId).collect(),
            nonce,
            cdm_version: CdmVersion::new(16, 1, 2),
            security_level: SecurityLevel::L3,
            rsa_signature: sig,
        };
        prop_assert_eq!(LicenseRequest::parse(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn license_response_codec_round_trip(
        esk in proptest::collection::vec(any::<u8>(), 1..200),
        enc_ctx in proptest::collection::vec(any::<u8>(), 0..40),
        mac_ctx in proptest::collection::vec(any::<u8>(), 0..40),
        entries in proptest::collection::vec(
            (any::<[u8; 16]>(), any::<[u8; 16]>(), proptest::collection::vec(any::<u8>(), 1..64), 0u32..2160),
            0..4,
        ),
        sig in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let resp = LicenseResponse {
            nonce: [3; 16],
            encrypted_session_key: esk,
            enc_context: enc_ctx,
            mac_context: mac_ctx,
            key_entries: entries
                .into_iter()
                .map(|(kid, iv, ek, h)| KeyEntry {
                    kid: KeyId(kid),
                    iv,
                    encrypted_key: ek,
                    control: KeyControl {
                        max_resolution_height: h,
                        min_security_level: SecurityLevel::L1,
                        duration_seconds: 3600,
                    },
                })
                .collect(),
            signature: sig,
        };
        prop_assert_eq!(LicenseResponse::parse(&resp.to_bytes()).unwrap(), resp);
    }

    #[test]
    fn ladder_is_deterministic_and_context_separated(
        session_key in any::<[u8; 16]>(),
        ctx_a in proptest::collection::vec(any::<u8>(), 0..40),
        ctx_b in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let a1 = derive_session_keys(&session_key, &ctx_a, &ctx_a);
        let a2 = derive_session_keys(&session_key, &ctx_a, &ctx_a);
        prop_assert_eq!(a1.enc_key, a2.enc_key);
        prop_assert_eq!(a1.mac_key_server, a2.mac_key_server);
        if ctx_a != ctx_b {
            let b = derive_session_keys(&session_key, &ctx_b, &ctx_b);
            prop_assert_ne!(a1.enc_key, b.enc_key);
        }
    }

    #[test]
    fn derivation_labels_never_collide(
        key in any::<[u8; 16]>(),
        ctx in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let enc = derive_key_128(&key, labels::ENCRYPTION, &ctx);
        let auth = derive_key_128(&key, labels::AUTHENTICATION, &ctx);
        let prov = derive_key_128(&key, labels::PROVISIONING, &ctx);
        prop_assert_ne!(enc, auth);
        prop_assert_ne!(enc, prov);
        prop_assert_ne!(auth, prov);
    }
}
