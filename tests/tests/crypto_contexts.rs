//! Cross-crate pins for the precomputed-context crypto hot path: RSA
//! known-answer vectors through the Montgomery+CRT contexts, and
//! byte-identity of the batched CENC keystream against a from-spec
//! per-block reference.
//!
//! Everything here is deterministic (seeded RNG, fixed OAEP seed), so
//! any future change to the Montgomery/REDC/CRT code that alters a
//! single output byte fails loudly instead of silently corrupting the
//! license path.

use wideleak::bigint::modular::{mod_inv, mod_pow_schoolbook};
use wideleak::bigint::montgomery::CrtContext;
use wideleak::bigint::BigUint;
use wideleak::bmff::types::Subsample;
use wideleak::cenc::ctr::{decrypt_sample, encrypt_sample};
use wideleak::cenc::keys::ContentKey;
use wideleak::crypto::aes::{Aes128, BLOCK_LEN};
use wideleak::crypto::rng::seeded_rng;
use wideleak::crypto::rsa::RsaPrivateKey;

/// Seeded 1024-bit key shared by the known-answer tests; generation is
/// deterministic so every derived artifact below is pinnable.
fn fixed_key() -> RsaPrivateKey {
    RsaPrivateKey::generate(&mut seeded_rng(1701), 1024)
}

const FIXED_N_HEX: &str = "90a5bf7861794c936b21c110ed0948236a290f67cf68adc8600485cbbf309776e34711b004b4843f903ebd56ca3d70add44eb4b7d633ac0dca176ac7d0aff00a36667ddf60e8f318b023e2b218bfae176eaa2d46471071be355a5cf775ed8885ed4ed88520d806b5a3ff5e7882ff808852b05546bfbdc4d889b5e0170855fdf9";

const KAT_MSG: &[u8] = b"wideleak known-answer vector";

/// OAEP ciphertext of `KAT_MSG` under `fixed_key()` with seed rng 7.
const KAT_OAEP_CT_HEX: &str = "15183de8cb0a691a5d3d8f0305c371f95f9f0600235075185107aa24fda7e5ac2df825af22a061459fb0fa28457892cb8120c2c8e6055626c76799851e96c86088bf628c911660473a75328d1fb63c21a95ac18d24f021100dc5ca6f2855cdfedc01a2cbf284a933d8f3bffab5940f5d283e4b2d089958638126d023dd26aea3";

/// PKCS#1 v1.5 signature of `KAT_MSG` (deterministic padding).
const KAT_PKCS1_SIG_HEX: &str = "53519463f5ca110f6f0045dbe8ea711ec72aa18ba28e1f47b040891ffb761d9e431cb8c3e95d5b521b8a8c75c9610af817f1601d20f45166c724a360c37dfe6ad02f7b069fca571b421a45b8ab0e67447ef8852460bfbddf9bbf65a769eb7775e24d4845b15c302c5d5dec6963992a7df57e42770a1b83404edb8bed75633936";

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn rsa_keygen_is_deterministic_and_pinned() {
    let key = fixed_key();
    assert_eq!(key.public_key().modulus().to_hex(), FIXED_N_HEX);
}

#[test]
fn rsa_oaep_known_answer_through_contexts() {
    let key = fixed_key();
    let ct = key.public_key().encrypt_oaep(&mut seeded_rng(7), KAT_MSG).unwrap();
    assert_eq!(hex(&ct), KAT_OAEP_CT_HEX, "OAEP encrypt (Montgomery public context) drifted");
    // Decrypt runs through the CRT + per-prime Montgomery contexts.
    assert_eq!(key.decrypt_oaep(&ct).unwrap(), KAT_MSG);
}

#[test]
fn rsa_pkcs1v15_signature_known_answer() {
    let key = fixed_key();
    let sig = key.sign_pkcs1v15_sha256(KAT_MSG).unwrap();
    assert_eq!(hex(&sig), KAT_PKCS1_SIG_HEX, "PKCS#1 v1.5 signature (CRT context) drifted");
    key.public_key().verify_pkcs1v15_sha256(KAT_MSG, &sig).unwrap();
}

#[test]
fn crt_private_op_matches_schoolbook_on_full_modulus() {
    let key = fixed_key();
    let n = key.public_key().modulus();
    let d = key.private_exponent();
    let (p, q) = key.factors();
    let one = BigUint::one();
    let d_p = d % &(p - &one);
    let d_q = d % &(q - &one);
    let q_inv = mod_inv(q, p).unwrap();
    // The same CRT+Montgomery machinery RsaPrivateKey::precompute builds.
    let crt = CrtContext::new(p, q, &d_p, &d_q, &q_inv);
    // Structured ciphertext values, including the edges.
    for c in [
        BigUint::zero(),
        BigUint::one(),
        BigUint::from_u64(0xDEAD_BEEF),
        n - &one,
        BigUint::from_bytes_be(&[0x5A; 96]),
    ] {
        assert_eq!(
            crt.exp(&c),
            mod_pow_schoolbook(&c, d, n),
            "CRT context and schoolbook disagree on c^d mod n"
        );
    }
}

// --- CENC batched-keystream byte-identity ------------------------------

/// From-spec CENC CTR reference: counter block = 8-byte IV || 64-bit BE
/// block counter, keystream generated one block at a time and running
/// continuously over the encrypted regions (clear bytes consume none).
///
/// Written independently of `wideleak-cenc`'s batched implementation so
/// the two can only agree by actually implementing the same scheme.
fn reference_cenc(
    key: &ContentKey,
    iv: [u8; 8],
    sample: &[u8],
    subsamples: &[Subsample],
) -> Vec<u8> {
    let cipher = Aes128::new(&key.0);
    let mut out = sample.to_vec();
    let mut block_index = 0u64;
    let mut ks = [0u8; BLOCK_LEN];
    let mut ks_used = BLOCK_LEN;
    let mut next_byte = |cipher: &Aes128| {
        if ks_used == BLOCK_LEN {
            ks[..8].copy_from_slice(&iv);
            ks[8..].copy_from_slice(&block_index.to_be_bytes());
            cipher.encrypt_block(&mut ks);
            block_index += 1;
            ks_used = 0;
        }
        ks_used += 1;
        ks[ks_used - 1]
    };
    if subsamples.is_empty() {
        for b in &mut out {
            *b ^= next_byte(&cipher);
        }
        return out;
    }
    let mut offset = 0usize;
    for sub in subsamples {
        offset += sub.clear_bytes as usize;
        for b in &mut out[offset..offset + sub.encrypted_bytes as usize] {
            *b ^= next_byte(&cipher);
        }
        offset += sub.encrypted_bytes as usize;
    }
    out
}

#[test]
fn batched_ctr_matches_from_spec_reference() {
    let key = ContentKey::from_label("crypto-contexts");
    let corpus: &[&[Subsample]] = &[
        &[],
        &[Subsample { clear_bytes: 0, encrypted_bytes: 1 }],
        &[Subsample { clear_bytes: 5, encrypted_bytes: 11 }],
        &[
            Subsample { clear_bytes: 3, encrypted_bytes: 7 },
            Subsample { clear_bytes: 0, encrypted_bytes: 21 },
            Subsample { clear_bytes: 11, encrypted_bytes: 600 },
            Subsample { clear_bytes: 1, encrypted_bytes: 5 },
        ],
        &[
            Subsample { clear_bytes: 97, encrypted_bytes: 903 },
            Subsample { clear_bytes: 16, encrypted_bytes: 512 },
            Subsample { clear_bytes: 0, encrypted_bytes: 15 },
        ],
    ];
    for (case, subs) in corpus.iter().enumerate() {
        let total: usize = if subs.is_empty() {
            2000
        } else {
            subs.iter().map(|s| s.clear_bytes as usize + s.encrypted_bytes as usize).sum()
        };
        let pt: Vec<u8> = (0..total).map(|i| (i * 31 % 251) as u8).collect();
        let iv = [case as u8 + 1; 8];
        let got = encrypt_sample(&key, iv, &pt, subs).unwrap();
        let expected = reference_cenc(&key, iv, &pt, subs);
        assert_eq!(got, expected, "case {case}: batched keystream diverged from spec reference");
        // And the inverse direction restores the plaintext.
        assert_eq!(decrypt_sample(&key, iv, &got, subs).unwrap(), pt, "case {case}");
    }
}
