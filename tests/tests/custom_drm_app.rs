//! Q1's other answer: an app that never touches platform Widevine.
//!
//! The paper's Q1 sets out "to quantify the OTT apps leveraging Widevine
//! or custom DRM implementation like in Indian music industry" (its
//! reference [14], the Looney Tunes study). All ten evaluated apps turned
//! out to use Widevine; this test builds a hypothetical music app with a
//! fully app-embedded DRM and checks the monitor classifies it as *not*
//! relying on platform Widevine.

use wideleak::device::catalog::DeviceModel;
use wideleak::monitor::classify::WidevineUse;
use wideleak::monitor::study::{study_app, STUDY_TITLE};
use wideleak::ott::apps::{evaluated_apps, AppProfile};
use wideleak::ott::content::{demo_catalog, AudioProtection};
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

fn looney_tunes_profile() -> AppProfile {
    AppProfile {
        name: "LooneyTunes Music",
        slug: "looneytunes",
        installs_millions: 100,
        audio: AudioProtection::DistinctKey,
        enforce_revocation: false,
        custom_drm_on_l3: false,
        uri_protection: false,
        subtitles_in_mpd: false,
        metadata_kids_visible: true,
        uses_safetynet: false,
        always_custom_drm: true,
    }
}

fn eco_with_music_app() -> Ecosystem {
    let mut profiles = evaluated_apps();
    profiles.push(looney_tunes_profile());
    Ecosystem::with_profiles(EcosystemConfig::fast_for_tests(), profiles, demo_catalog())
}

#[test]
fn custom_drm_app_never_touches_the_platform_cdm() {
    let eco = eco_with_music_app();
    for model in [DeviceModel::pixel_6(), DeviceModel::nexus_5()] {
        let stack = eco.boot_device(model.clone(), true);
        let app = eco.install_app(&stack, "looneytunes", "music-fan");
        stack.device.hook_engine().start_recording();
        let outcome = app.play(STUDY_TITLE).unwrap();
        let log = stack.device.hook_engine().stop_recording();
        assert!(!outcome.used_platform_widevine, "{}", model.name);
        assert!(outcome.trace.is_none());
        assert!(
            log.iter()
                .all(|e| e.function.contains("InstallKeybox") || e.function.contains("Initialize")),
            "{}: playback-phase platform CDM calls observed: {log:?}",
            model.name
        );
        assert!(!outcome.video_samples.is_empty(), "it still plays");
    }
}

#[test]
fn monitor_classifies_the_custom_drm_app_as_not_widevine() {
    let eco = eco_with_music_app();
    let findings = study_app(&eco, "looneytunes").unwrap();
    assert_eq!(findings.widevine_use, WidevineUse::No);
    assert!(!findings.l1_on_modern_device, "no platform CDM, no L1 observation");
    // The ten real apps keep their classifications in the same ecosystem.
    let netflix = study_app(&eco, "netflix").unwrap();
    assert_eq!(netflix.widevine_use, WidevineUse::Yes);
}

#[test]
fn custom_drm_app_is_immune_to_the_platform_keybox_attack() {
    // Like Amazon's fallback: no platform license traffic, nothing for the
    // ladder to replay.
    let eco = eco_with_music_app();
    let outcome = wideleak::attack::recover::attack_app(&eco, "looneytunes");
    assert!(!outcome.succeeded());
    assert!(matches!(outcome.failure, Some(wideleak::attack::AttackError::NoProvisioningTraffic)));
}
