//! Distributed tracing end-to-end: trace contexts must survive the
//! wire, stitch client and server spans into one connected trace on
//! every transport, and carry fault-injection evidence.
//!
//! The tracer is process-wide state, so every test here serializes on
//! one lock and drains the buffer before and after its traced window.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use wideleak::android_drm::binder::{
    DrmCall, InProcessBinder, ThreadedBinder, Transport, TransportKind,
};
use wideleak::android_drm::netserver::TcpBinder;
use wideleak::android_drm::server::MediaDrmServer;
use wideleak::android_drm::wire::{decode_frame_ext, encode_frame_with, FrameBody};
use wideleak::bmff::types::WIDEVINE_SYSTEM_ID;
use wideleak::device::catalog::DeviceModel;
use wideleak::faults::{FaultKind, FaultPlan, Schedule};
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::telemetry::trace;
use wideleak::telemetry::trace::TraceContext;

static TRACER_LOCK: Mutex<()> = Mutex::new(());

/// One empty media DRM server behind each of the three transports —
/// `IsSchemeSupported` needs no CDM, which keeps proptest iterations
/// cheap enough to run many cases.
fn boot_all_transports() -> Vec<(TransportKind, Arc<dyn Transport>)> {
    vec![
        (TransportKind::InProcess, Arc::new(InProcessBinder::new(MediaDrmServer::new()))),
        (TransportKind::Threaded, Arc::new(ThreadedBinder::builder(MediaDrmServer::new()).spawn())),
        (TransportKind::Tcp, Arc::new(TcpBinder::loopback(MediaDrmServer::new()).build().unwrap())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Property: any `TraceContext` survives its 24-byte wire
    /// encoding, survives a full frame encode/decode, and — adopted
    /// as the origin of a real transaction — stamps its trace id on
    /// every span each of the three transports records.
    #[test]
    fn trace_context_round_trips_across_all_transports(
        trace_id in 1u64..=u64::MAX,
        span_id in 1u64..=u64::MAX,
        parent_span_id in any::<u64>(),
    ) {
        let _lock = TRACER_LOCK.lock();
        trace::enable();
        let _ = trace::drain();
        let ctx = TraceContext { trace_id, span_id, parent_span_id };
        prop_assert_eq!(TraceContext::decode(&ctx.encode()), Some(ctx));

        let frame = encode_frame_with(&FrameBody::Call(DrmCall::IsProvisioned), Some(&ctx));
        let (body, carried, _) = decode_frame_ext(&frame).expect("framed context decodes");
        prop_assert!(matches!(body, FrameBody::Call(DrmCall::IsProvisioned)));
        prop_assert_eq!(carried, Some(ctx));

        for (kind, binder) in boot_all_transports() {
            let _ = trace::drain();
            {
                let _origin = trace::span_with_parent("test.origin", ctx);
                let _ = binder.transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID });
            }
            let spans = trace::drain();
            prop_assert!(
                spans.iter().any(|s| s.name == "drm.call"),
                "no drm.call span on {kind}"
            );
            for span in &spans {
                prop_assert_eq!(
                    span.trace_id, trace_id,
                    "span {} on {kind} left the origin trace", span.name
                );
            }
        }
        trace::disable();
        let _ = trace::drain();
    }
}

/// A clean license-path call over TCP produces exactly one trace whose
/// spans form a connected tree with at least four distinct phases —
/// the acceptance shape for the stitched client → server breakdown.
#[test]
fn single_tcp_call_produces_one_stitched_trace_with_phases() {
    let _lock = TRACER_LOCK.lock();
    let mut config = EcosystemConfig::fast_for_tests();
    config.transport = TransportKind::Tcp;
    let eco = Ecosystem::new(config);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);

    trace::enable();
    let _ = trace::drain();
    stack.binder.transact(DrmCall::IsProvisioned).expect("clean probe succeeds");
    let spans = trace::drain();
    trace::disable();

    let trace_ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    assert_eq!(trace_ids.len(), 1, "one call mints exactly one trace: {spans:#?}");

    let roots: Vec<_> = spans.iter().filter(|s| s.parent_span_id == 0).collect();
    assert_eq!(roots.len(), 1, "one root span");
    assert_eq!(roots[0].name, "drm.call");

    // Connected: every non-root span's parent is in the same trace.
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    for span in &spans {
        assert!(
            span.parent_span_id == 0 || ids.contains(&span.parent_span_id),
            "span {} is orphaned",
            span.name
        );
    }

    let phases: std::collections::HashSet<&str> = spans.iter().map(|s| s.name).collect();
    assert!(phases.len() >= 4, "a TCP call breaks down into at least 4 phases, got {phases:?}");
    for expected in ["drm.call", "tcp.roundtrip", "server.handle", "server.dispatch"] {
        assert!(phases.contains(expected), "missing {expected} in {phases:?}");
    }
}

/// A faulted TCP call still yields one connected trace, and the fault
/// injection is attached to it as an annotation alongside the
/// resulting wire error class.
#[test]
fn faulted_tcp_call_yields_one_connected_trace_with_fault_attached() {
    let _lock = TRACER_LOCK.lock();
    let plan = FaultPlan::builder()
        .binder_fault("is_provisioned", FaultKind::GarbleBody, Schedule::Always)
        .build();
    let mut config = EcosystemConfig::fast_with_faults(plan);
    config.transport = TransportKind::Tcp;
    let eco = Ecosystem::new(config);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);

    trace::enable();
    let _ = trace::drain();
    let result = stack.binder.transact(DrmCall::IsProvisioned);
    let spans = trace::drain();
    trace::disable();

    assert!(result.is_err(), "the garble corrupts the reply frame");

    let trace_ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    assert_eq!(trace_ids.len(), 1, "the faulted call is still one trace");

    let fault_values: Vec<&str> = spans
        .iter()
        .flat_map(|s| s.annotations.iter())
        .filter(|(k, _)| *k == "fault")
        .map(|(_, v)| v.as_str())
        .collect();
    assert_eq!(fault_values, vec!["garble_body"], "the injected fault rides the trace");

    let root = spans.iter().find(|s| s.parent_span_id == 0).expect("root span");
    assert!(
        root.annotations.iter().any(|(k, v)| *k == "error" && v.starts_with("wire.")),
        "the root span carries the wire error class: {:?}",
        root.annotations
    );
}
