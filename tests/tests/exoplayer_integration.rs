//! ExoPlayer-layer integration: one session licensing distinct video and
//! audio keys (the recommended policy the API makes easy) against the
//! real backend.

use wideleak::android_drm::exoplayer::{ExoError, ExoPlayer, ExoSource};
use wideleak::android_drm::playback::MediaBundle;
use wideleak::android_drm::DrmError;
use wideleak::bmff::fragment::{InitSegment, MediaSegment};
use wideleak::bmff::types::WIDEVINE_SYSTEM_ID;
use wideleak::cdm::wire::TlvWriter;
use wideleak::device::catalog::DeviceModel;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::content::{synth_samples, TrackSelector, SEGMENTS_PER_REP};
use wideleak_tests::fast_ecosystem;

fn bundle(eco: &wideleak::ott::ecosystem::Ecosystem, app: &str, rep: &str) -> MediaBundle {
    let init_bytes =
        eco.backend().handle(&format!("asset/{app}/title-001/{rep}/init"), &[]).unwrap();
    let init = InitSegment::from_bytes(&init_bytes).unwrap();
    let segments = (1..=SEGMENTS_PER_REP)
        .map(|i| {
            let raw =
                eco.backend().handle(&format!("asset/{app}/title-001/{rep}/seg/{i}"), &[]).unwrap();
            MediaSegment::from_bytes(&raw).unwrap()
        })
        .collect();
    MediaBundle { init, segments }
}

#[test]
fn one_session_covers_distinct_video_and_audio_keys() {
    // Amazon is the app with the recommended policy: distinct keys.
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "amazon", "exo-user");
    app.ensure_provisioned().unwrap();

    let video = bundle(&eco, "amazon", "video-1080p");
    let audio = bundle(&eco, "amazon", "audio-en");
    let source = ExoSource::new(video).with_audio(audio);
    assert_eq!(source.required_key_ids().len(), 2, "distinct keys requested together");

    let token = eco.accounts().subscribe("amazon", "exo-user");
    let player = ExoPlayer::new(stack.binder.clone(), WIDEVINE_SYSTEM_ID).unwrap();
    let playback = player
        .prepare_and_play("title-001", [9; 16], &source, |request| {
            let mut w = TlvWriter::new();
            w.string(1, &token).bytes(2, request);
            eco.backend()
                .handle("license/amazon/title-001", &w.finish())
                .map_err(|e| DrmError::Cdm(wideleak::cdm::CdmError::Rejected { reason: e }))
        })
        .unwrap();

    let expected_video: Vec<Vec<u8>> = (1..=SEGMENTS_PER_REP)
        .flat_map(|s| {
            synth_samples("amazon", "title-001", &TrackSelector::Video { height: 1080 }, s)
        })
        .collect();
    assert_eq!(
        playback.video_frames.iter().map(|f| f.data.clone()).collect::<Vec<_>>(),
        expected_video
    );
    assert!(!playback.audio_frames.is_empty());
}

#[test]
fn shared_key_source_licenses_one_key() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::nexus_5(), false);
    let app = eco.install_app(&stack, "showtime", "exo-shared");
    app.ensure_provisioned().unwrap();

    // Showtime's audio shares the 540p video key.
    let video = bundle(&eco, "showtime", "video-540p");
    let audio = bundle(&eco, "showtime", "audio-en");
    let source = ExoSource::new(video).with_audio(audio);
    assert_eq!(source.required_key_ids().len(), 1, "minimal policy collapses to one key");

    let token = eco.accounts().subscribe("showtime", "exo-shared");
    let player = ExoPlayer::new(stack.binder.clone(), WIDEVINE_SYSTEM_ID).unwrap();
    let playback = player
        .prepare_and_play("title-001", [4; 16], &source, |request| {
            let mut w = TlvWriter::new();
            w.string(1, &token).bytes(2, request);
            eco.backend()
                .handle("license/showtime/title-001", &w.finish())
                .map_err(|e| DrmError::Cdm(wideleak::cdm::CdmError::Rejected { reason: e }))
        })
        .unwrap();
    assert!(!playback.video_frames.is_empty());
    assert!(!playback.audio_frames.is_empty());
}

#[test]
fn hd_source_on_l3_fails_cleanly_at_licensing() {
    // ExoPlayer surfaces "key not granted" up front: an L3 device asking
    // for the 1080p rendition is refused before any decode starts.
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::nexus_5(), false);
    let app = eco.install_app(&stack, "showtime", "exo-l3");
    app.ensure_provisioned().unwrap();

    let source = ExoSource::new(bundle(&eco, "showtime", "video-1080p"));
    let token = eco.accounts().subscribe("showtime", "exo-l3");
    let player = ExoPlayer::new(stack.binder.clone(), WIDEVINE_SYSTEM_ID).unwrap();
    let err = player
        .prepare_and_play("title-001", [5; 16], &source, |request| {
            let mut w = TlvWriter::new();
            w.string(1, &token).bytes(2, request);
            eco.backend()
                .handle("license/showtime/title-001", &w.finish())
                .map_err(|e| DrmError::Cdm(wideleak::cdm::CdmError::Rejected { reason: e }))
        })
        .unwrap_err();
    assert!(matches!(err, ExoError::Drm(_)), "{err:?}");
}
