//! Failure injection across the whole stack: corrupted keyboxes,
//! tampered licenses, stolen sessions, wrong keys, revoked accounts.

use std::sync::Arc;

use wideleak::android_drm::binder::DrmCall;
use wideleak::bmff::types::WIDEVINE_SYSTEM_ID;
use wideleak::cdm::keybox::Keybox;
use wideleak::cdm::messages::{LicenseResponse, ProvisioningResponse};
use wideleak::cdm::oemcrypto::{L3OemCrypto, OemCrypto};
use wideleak::cdm::CdmError;
use wideleak::device::catalog::{CdmVersion, DeviceModel};
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak_tests::fast_ecosystem;

/// Boots an L3 CDM provisioned through the real servers, returning the
/// backend pieces needed for license-level tampering.
fn provisioned_l3() -> (wideleak::ott::ecosystem::Ecosystem, L3OemCrypto, String) {
    let eco = fast_ecosystem();
    let hooks = Arc::new(HookEngine::new());
    let memory = Arc::new(ProcessMemory::new("mediaserver"));
    let l3 = L3OemCrypto::new(CdmVersion::new(16, 0, 0), hooks, memory);
    l3.install_keybox(eco.trust().issue_keybox("failure-injection")).unwrap();
    let preq = l3.provisioning_request([1; 16]).unwrap();
    let raw = eco.backend().handle("provision/showtime", &preq.to_bytes()).unwrap();
    l3.install_rsa_key([1; 16], &ProvisioningResponse::parse(&raw).unwrap()).unwrap();
    let token = eco.accounts().subscribe("showtime", "victim");
    (eco, l3, token)
}

fn fetch_license(
    eco: &wideleak::ott::ecosystem::Ecosystem,
    l3: &L3OemCrypto,
    token: &str,
    session: u32,
) -> LicenseResponse {
    let req = l3.license_request(session, "title-001", &[]).unwrap();
    let mut w = wideleak::cdm::wire::TlvWriter::new();
    w.string(1, token).bytes(2, &req.to_bytes());
    let raw = eco.backend().handle("license/showtime/title-001", &w.finish()).unwrap();
    LicenseResponse::parse(&raw).unwrap()
}

#[test]
fn tampered_license_key_entry_is_rejected() {
    let (eco, l3, token) = provisioned_l3();
    let session = l3.open_session([2; 16]).unwrap();
    let mut resp = fetch_license(&eco, &l3, &token, session);
    resp.key_entries[0].encrypted_key[0] ^= 0x80;
    // Body changed → the HMAC over the body fails first.
    assert_eq!(l3.load_license(session, &resp), Err(CdmError::BadSignature));
}

#[test]
fn license_replay_into_another_session_is_rejected() {
    // The license response echoes the request nonce; a response captured
    // for one session cannot be replayed into a session with a different
    // nonce.
    let (eco, l3, token) = provisioned_l3();
    let s1 = l3.open_session([3; 16]).unwrap();
    let resp = fetch_license(&eco, &l3, &token, s1);
    let s2 = l3.open_session([4; 16]).unwrap();
    assert!(matches!(
        l3.load_license(s2, &resp),
        Err(CdmError::BadMessage { reason }) if reason.contains("nonce")
    ));
    // The rightful session still loads it.
    assert!(l3.load_license(s1, &resp).is_ok());
}

#[test]
fn truncated_license_response_is_rejected() {
    let (eco, l3, token) = provisioned_l3();
    let session = l3.open_session([5; 16]).unwrap();
    let resp = fetch_license(&eco, &l3, &token, session);
    let bytes = resp.to_bytes();
    for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
        assert!(LicenseResponse::parse(&bytes[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn corrupted_keybox_refused_at_boot() {
    let hooks = Arc::new(HookEngine::new());
    let memory = Arc::new(ProcessMemory::new("mediaserver"));
    let l3 = L3OemCrypto::new(CdmVersion::new(16, 0, 0), hooks, memory);
    let mut bytes = Keybox::issue(b"corrupt-me", &[1; 16]).to_bytes();
    bytes[60] ^= 0xFF;
    assert!(Keybox::parse(&bytes).is_err());
    // The CDM only accepts parsed keyboxes, so corruption cannot even
    // reach install; prove the parse gate holds.
    assert!(l3.device_id().is_err(), "no keybox installed");
}

#[test]
fn unsubscribed_account_cannot_license() {
    let (eco, l3, _) = provisioned_l3();
    let session = l3.open_session([6; 16]).unwrap();
    let req = l3.license_request(session, "title-001", &[]).unwrap();
    let mut w = wideleak::cdm::wire::TlvWriter::new();
    w.string(1, "token:showtime:freeloader").bytes(2, &req.to_bytes());
    let err = eco.backend().handle("license/showtime/title-001", &w.finish()).unwrap_err();
    assert_eq!(err, "UNAUTHORIZED");
}

#[test]
fn cancelled_subscription_stops_new_licenses() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "ocs", "cancel-me");
    assert!(app.play("title-001").is_ok());
    eco.accounts().unsubscribe("ocs", "cancel-me");
    assert!(app.play("title-002").is_err(), "no new license after cancelling");
}

#[test]
fn decrypt_with_unloaded_key_fails() {
    let eco = fast_ecosystem();
    for (model, expect_exact) in [(DeviceModel::nexus_5(), true), (DeviceModel::pixel_6(), false)] {
        let stack = eco.boot_device(model, false);
        let sid = stack
            .binder
            .transact(DrmCall::OpenSession { nonce: [7; 16] })
            .unwrap()
            .into_session_id()
            .unwrap();
        let err = stack
            .binder
            .transact(DrmCall::DecryptSample {
                session_id: sid,
                kid: wideleak::bmff::types::KeyId([9; 16]),
                crypto: wideleak::cdm::oemcrypto::SampleCrypto::Cenc { iv: [0; 8] },
                data: vec![0; 32],
                subsamples: vec![],
            })
            .unwrap_err();
        if expect_exact {
            // L3 reports the precise CDM error.
            assert!(matches!(err, wideleak::android_drm::DrmError::Cdm(CdmError::KeyNotLoaded)));
        } else {
            // L1 surfaces the failure through the TEE boundary, which
            // deliberately coarsens error detail.
            assert!(matches!(err, wideleak::android_drm::DrmError::Cdm(_)));
        }
    }
}

#[test]
fn foreign_drm_scheme_is_refused() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let playready_ish = [0x9a; 16];
    assert!(!stack
        .binder
        .transact(DrmCall::IsSchemeSupported { uuid: playready_ish })
        .unwrap()
        .into_bool()
        .unwrap());
    assert!(stack
        .binder
        .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
        .unwrap()
        .into_bool()
        .unwrap());
}

#[test]
fn provisioning_response_for_another_device_is_rejected() {
    let eco = fast_ecosystem();
    // Device A provisions legitimately.
    let hooks = Arc::new(HookEngine::new());
    let mem = Arc::new(ProcessMemory::new("mediaserver"));
    let a = L3OemCrypto::new(CdmVersion::new(16, 0, 0), hooks.clone(), mem.clone());
    a.install_keybox(eco.trust().issue_keybox("device-a")).unwrap();
    let preq = a.provisioning_request([9; 16]).unwrap();
    let raw = eco.backend().handle("provision/showtime", &preq.to_bytes()).unwrap();
    let resp = ProvisioningResponse::parse(&raw).unwrap();
    // Device B tries to install A's response: the keybox-derived MAC
    // fails.
    let b = L3OemCrypto::new(CdmVersion::new(16, 0, 0), hooks, mem);
    b.install_keybox(eco.trust().issue_keybox("device-b")).unwrap();
    assert_eq!(b.install_rsa_key([9; 16], &resp), Err(CdmError::BadSignature));
}
