//! End-to-end reproduction of Figure 1: the encrypted-content playback
//! sequence, across devices, transports and apps.

use wideleak::android_drm::playback::{PlaybackStep, FIGURE_1_SEQUENCE};
use wideleak::device::catalog::DeviceModel;
use wideleak_tests::fast_ecosystem;

#[test]
fn figure_1_holds_on_l1_and_l3() {
    let eco = fast_ecosystem();
    for model in [DeviceModel::pixel_6(), DeviceModel::nexus_5(), DeviceModel::midrange_l3()] {
        let stack = eco.boot_device(model.clone(), false);
        let app = eco.install_app(&stack, "ocs", "fig1-user");
        let outcome = app.play("title-001").unwrap();
        let trace = outcome.trace.expect("platform playback traces");
        assert!(trace.matches_figure_1(), "{}: {:?}", model.name, trace.steps());
    }
}

#[test]
fn figure_1_holds_over_the_threaded_binder() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device_threaded(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "salto", "fig1-threaded");
    let outcome = app.play("title-002").unwrap();
    assert!(outcome.trace.unwrap().matches_figure_1());
}

#[test]
fn figure_1_holds_for_every_platform_widevine_app() {
    let eco = fast_ecosystem();
    for profile in eco.profiles().to_vec() {
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, profile.slug, "fig1-sweep");
        let outcome = app.play("title-001").unwrap();
        // On L1 all ten apps take the platform path (Amazon included).
        let trace = outcome.trace.expect("platform path on L1");
        assert!(trace.matches_figure_1(), "{}", profile.name);
    }
}

#[test]
fn license_acquisition_strictly_precedes_decryption() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "hulu", "ordering");
    let trace = app.play("title-001").unwrap().trace.unwrap();
    let pos = |s: PlaybackStep| trace.steps().iter().position(|&x| x == s).unwrap();
    assert!(pos(PlaybackStep::License) < pos(PlaybackStep::Decrypt));
    assert!(pos(PlaybackStep::OpenSessionCdm) < pos(PlaybackStep::GetKeyRequestCdm));
    assert!(pos(PlaybackStep::GetMedia) < pos(PlaybackStep::QueueSecureInputBuffer));
}

#[test]
fn the_constant_and_the_trace_agree() {
    // FIGURE_1_SEQUENCE is the figure; a real run must produce it, not
    // some other accepted permutation.
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "mycanal", "exact");
    let trace = app.play("title-001").unwrap().trace.unwrap();
    assert_eq!(trace.steps(), FIGURE_1_SEQUENCE);
}
