//! License lifecycle: duration enforcement against the CDM clock and
//! renewal by re-licensing — on both the L3 and L1 backends.

use std::sync::Arc;

use wideleak::cdm::messages::{LicenseResponse, ProvisioningResponse};
use wideleak::cdm::oemcrypto::{L1OemCrypto, L3OemCrypto, OemCrypto, SampleCrypto};
use wideleak::cdm::CdmError;
use wideleak::device::catalog::CdmVersion;
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::license::DEFAULT_LICENSE_DURATION_SECS;
use wideleak::tee::SecureWorld;
use wideleak_tests::fast_ecosystem;

fn l3_backend(hooks: Arc<HookEngine>) -> L3OemCrypto {
    L3OemCrypto::new(CdmVersion::new(16, 0, 0), hooks, Arc::new(ProcessMemory::new("mediaserver")))
}

fn l1_backend(hooks: Arc<HookEngine>) -> L1OemCrypto {
    L1OemCrypto::new(CdmVersion::new(16, 0, 0), Arc::new(SecureWorld::new()), hooks)
}

/// Provisions and licenses a backend; returns the session and a usable kid.
fn license(
    eco: &wideleak::ott::ecosystem::Ecosystem,
    backend: &dyn OemCrypto,
    device: &str,
    user: &str,
) -> (u32, wideleak::bmff::types::KeyId) {
    backend.install_keybox(eco.trust().issue_keybox(device)).unwrap();
    if !backend.is_provisioned() {
        let preq = backend.provisioning_request([1; 16]).unwrap();
        let raw = eco.backend().handle("provision/ocs", &preq.to_bytes()).unwrap();
        backend.install_rsa_key([1; 16], &ProvisioningResponse::parse(&raw).unwrap()).unwrap();
    }
    let token = eco.accounts().subscribe("ocs", user);
    let sid = backend.open_session([2; 16]).unwrap();
    let req = backend.license_request(sid, "title-001", &[]).unwrap();
    let mut w = wideleak::cdm::wire::TlvWriter::new();
    w.string(1, &token).bytes(2, &req.to_bytes());
    let raw = eco.backend().handle("license/ocs/title-001", &w.finish()).unwrap();
    let kids = backend.load_license(sid, &LicenseResponse::parse(&raw).unwrap()).unwrap();
    (sid, kids[0])
}

fn decrypt(
    backend: &dyn OemCrypto,
    sid: u32,
    kid: &wideleak::bmff::types::KeyId,
) -> Result<Vec<u8>, wideleak::cdm::CdmError> {
    backend.decrypt_sample(sid, kid, &SampleCrypto::Cenc { iv: [1; 8] }, &[0u8; 64], &[])
}

#[test]
fn keys_expire_after_their_duration_on_l3() {
    let eco = fast_ecosystem();
    let backend = l3_backend(Arc::new(HookEngine::new()));
    let (sid, kid) = license(&eco, &backend, "expiry-l3", "user-a");
    assert!(decrypt(&backend, sid, &kid).is_ok(), "fresh license decrypts");

    // One second before expiry: still fine.
    backend.advance_clock(DEFAULT_LICENSE_DURATION_SECS as u64 - 1).unwrap();
    assert!(decrypt(&backend, sid, &kid).is_ok());

    // At expiry: refused.
    backend.advance_clock(1).unwrap();
    assert!(matches!(decrypt(&backend, sid, &kid), Err(CdmError::KeyExpired)));
}

#[test]
fn keys_expire_after_their_duration_on_l1() {
    let eco = fast_ecosystem();
    let backend = l1_backend(Arc::new(HookEngine::new()));
    let (sid, kid) = license(&eco, &backend, "expiry-l1", "user-b");
    assert!(decrypt(&backend, sid, &kid).is_ok());
    backend.advance_clock(DEFAULT_LICENSE_DURATION_SECS as u64).unwrap();
    // L1 coarsens the error across the TEE boundary; it must still fail.
    assert!(decrypt(&backend, sid, &kid).is_err());
}

#[test]
fn renewal_restores_playback() {
    let eco = fast_ecosystem();
    let backend = l3_backend(Arc::new(HookEngine::new()));
    let (sid, kid) = license(&eco, &backend, "renewal", "user-c");
    backend.advance_clock(DEFAULT_LICENSE_DURATION_SECS as u64 + 10).unwrap();
    assert!(matches!(decrypt(&backend, sid, &kid), Err(CdmError::KeyExpired)));

    // Renewal: a fresh license request/response cycle in a new session.
    let (sid2, kid2) = license(&eco, &backend, "renewal", "user-c");
    assert_eq!(kid, kid2, "same content keys after renewal (subscriber-independent)");
    assert!(decrypt(&backend, sid2, &kid2).is_ok());
}

#[test]
fn generic_crypto_respects_expiry_too() {
    let eco = fast_ecosystem();
    let backend = l3_backend(Arc::new(HookEngine::new()));
    let (sid, kid) = license(&eco, &backend, "generic-expiry", "user-d");
    assert!(backend.generic_sign(sid, &kid, b"payload").is_ok());
    backend.advance_clock(DEFAULT_LICENSE_DURATION_SECS as u64).unwrap();
    assert!(matches!(backend.generic_sign(sid, &kid, b"payload"), Err(CdmError::KeyExpired)));
}

#[test]
fn clock_is_monotonic_and_saturating() {
    let backend = l3_backend(Arc::new(HookEngine::new()));
    backend.advance_clock(u64::MAX).unwrap();
    backend.advance_clock(u64::MAX).unwrap(); // must not wrap/panic
}
