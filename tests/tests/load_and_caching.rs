//! Hot-path caching and the fleet load generator, end to end.
//!
//! The caching contract: every cache is bypassable, and enabling all of
//! them leaves the paper's outputs byte-identical — the cached material
//! is strictly the nonce-independent part of each response. The load
//! generator contract: same config, same report, byte for byte.
//!
//! Also pins the renewal-counting fix: `license.renewed` increments
//! exactly once per *successful* renewal, and a renewal whose retried
//! playback dies with `KeyExpired` again terminates instead of looping.

use wideleak::device::catalog::DeviceModel;
use wideleak::faults::{FaultKind, FaultPlan, Schedule};
use wideleak::load::{run_load, LoadConfig, LoadMode};
use wideleak::monitor::report::render_table_1;
use wideleak::monitor::study::run_study;
use wideleak::ott::cache::CacheConfig;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::ott::OttError;

/// Past the default 24h license duration, so one skew expires the key.
const EXPIRING_SKEW_SECS: u64 = 172_800;

fn skew_plan(schedule: Schedule) -> FaultPlan {
    FaultPlan::builder()
        .binder_fault("decrypt_sample", FaultKind::ClockSkew { secs: EXPIRING_SKEW_SECS }, schedule)
        .build()
}

#[test]
fn successful_renewal_is_counted_exactly_once() {
    let eco = Ecosystem::new(EcosystemConfig {
        seed: 7,
        ..EcosystemConfig::fast_with_faults(skew_plan(Schedule::Once { at: 0 }))
    });
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "netflix", "renewal-probe");
    // First decrypt hits the skew, the key expires, the app renews once
    // and the retried playback succeeds on the now-settled clock.
    app.play("title-001").expect("renewal rescues the playback");
    assert_eq!(app.retry_stats().renewals, 1, "one successful renewal, counted once");
}

#[test]
fn failed_renewal_terminates_and_is_not_counted() {
    let eco = Ecosystem::new(EcosystemConfig {
        seed: 7,
        ..EcosystemConfig::fast_with_faults(skew_plan(Schedule::Always))
    });
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "netflix", "renewal-probe");
    // Every decrypt skews the clock past the license duration: the
    // renewed license expires too. The loop must terminate with the
    // expiry error — renewal is attempted once, never counted.
    let err = app.play("title-001").expect_err("renewal cannot outrun a permanent skew");
    assert!(
        matches!(
            err,
            OttError::Drm(wideleak::android_drm::DrmError::Cdm(
                wideleak::cdm::CdmError::KeyExpired
            )) | OttError::Cdm(wideleak::cdm::CdmError::KeyExpired)
        ),
        "expiry must surface, got {err:?}"
    );
    assert_eq!(app.retry_stats().renewals, 0, "a failed renewal is not a renewal");
}

#[test]
fn all_caches_enabled_leave_table_1_byte_identical() {
    let plain = Ecosystem::new(EcosystemConfig::fast_for_tests());
    let cached = Ecosystem::new(EcosystemConfig {
        caches: CacheConfig::all(),
        ..EcosystemConfig::fast_for_tests()
    });
    let plain_table = render_table_1(&run_study(&plain).expect("plain study runs"));
    let cached_table = render_table_1(&run_study(&cached).expect("cached study runs"));
    assert_eq!(plain_table, cached_table, "caches must be invisible in Table I");
    // And the caches actually ran: repeated plays inside the study hit.
    let lic = cached.license_cache_stats().expect("license cache enabled");
    assert!(lic.lookups() > 0, "the study exercised the license cache");
}

#[test]
fn load_reports_are_deterministic_and_register_hits() {
    let config = LoadConfig {
        devices: 2,
        workers_per_device: 2,
        plays_per_worker: 3,
        seed: 31,
        mode: LoadMode::Closed,
        caches: CacheConfig::all(),
        ..LoadConfig::default()
    };
    let first = run_load(&config);
    let second = run_load(&config);
    assert_eq!(first.render(), second.render(), "same config, same report bytes");
    assert_eq!(first.failed_plays, 0);
    assert!(first.provisioning_cache.expect("enabled").hits > 0);
    assert!(first.license_cache.expect("enabled").hits > 0);
    assert!(first.decrypt_cache.expect("enabled").key_hits > 0);
    assert!(first.steady_latency.p50_ms <= first.steady_latency.p95_ms);
    assert!(first.steady_latency.p95_ms <= first.steady_latency.p99_ms);
}

#[test]
fn uncached_load_runs_the_full_paths() {
    let config = LoadConfig {
        devices: 1,
        workers_per_device: 2,
        plays_per_worker: 2,
        seed: 31,
        mode: LoadMode::Closed,
        caches: CacheConfig::none(),
        ..LoadConfig::default()
    };
    let report = run_load(&config);
    assert_eq!(report.failed_plays, 0, "cold paths still play everything");
    assert!(report.provisioning_cache.is_none());
    assert!(report.license_cache.is_none());
    assert!(report.decrypt_cache.is_none());
}
