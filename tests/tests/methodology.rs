//! The study's methodology defenses (§IV-B, §V-B): the two-pronged
//! static/dynamic analysis, and why app-level anti-tampering (SafetyNet,
//! anti-debugging) cannot stop CDM-process monitoring.

use wideleak::device::catalog::DeviceModel;
use wideleak::device::net::RemoteEndpoint;
use wideleak::monitor::apk::{scan_apk, DrmIntegration};
use wideleak::monitor::study::{study_app, STUDY_TITLE};
use wideleak::monitor::trace;
use wideleak::ott::OttError;
use wideleak_tests::fast_ecosystem;

#[test]
fn static_prong_flags_every_app_and_dynamic_prong_confirms() {
    let eco = fast_ecosystem();
    for profile in eco.profiles().to_vec() {
        // Static: the decompiled APK references the DRM API.
        let scan = scan_apk(&profile.apk());
        assert!(scan.references_media_drm(), "{} static scan", profile.name);

        // Dynamic: hooks fire during actual playback on a modern device.
        let stack = eco.boot_device(DeviceModel::pixel_6(), true);
        let app = eco.install_app(&stack, profile.slug, "methodology");
        stack.device.hook_engine().start_recording();
        app.play(STUDY_TITLE).unwrap();
        let log = stack.device.hook_engine().stop_recording();
        assert!(trace::analyze(&log).widevine_active, "{} dynamic confirmation", profile.name);
    }
}

#[test]
fn dead_code_false_positive_is_refuted_dynamically() {
    // myCANAL's bytecode references PlayReady (dead code); its actual
    // playback never touches anything but Widevine.
    let eco = fast_ecosystem();
    let mycanal = eco.profile("mycanal").unwrap().clone();
    let scan = scan_apk(&mycanal.apk());
    assert!(scan.integrations.contains(&DrmIntegration::PlayReady), "static over-reports");

    let stack = eco.boot_device(DeviceModel::pixel_6(), true);
    let app = eco.install_app(&stack, "mycanal", "deadcode-probe");
    stack.device.hook_engine().start_recording();
    app.play(STUDY_TITLE).unwrap();
    let log = stack.device.hook_engine().stop_recording();
    // Every observed call belongs to the Widevine libraries; no PlayReady
    // component ever executes.
    assert!(log
        .iter()
        .all(|e| e.library.contains("wvdrmengine") || e.library.contains("oemcrypto")));
}

#[test]
fn safetynet_catches_naive_app_debugging() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), true);
    stack.device.attach_app_debugger().unwrap();

    // A SafetyNet app refuses to play.
    let netflix = eco.install_app(&stack, "netflix", "debugged-user");
    assert_eq!(netflix.play(STUDY_TITLE).unwrap_err(), OttError::AttestationFailed);

    // An app without attestation plays regardless.
    let ocs = eco.install_app(&stack, "ocs", "debugged-user");
    assert!(ocs.play(STUDY_TITLE).is_ok());
}

#[test]
fn cdm_process_monitoring_is_invisible_to_safetynet() {
    // The paper's §V-B point: hook the CDM process, intercept the network
    // — SafetyNet never trips because the *app* process stays clean.
    let eco = fast_ecosystem();
    let findings = study_app(&eco, "netflix").unwrap();
    // The full instrumented study succeeded against a SafetyNet app.
    assert_eq!(
        findings.assets.audio,
        wideleak::monitor::classify::Protection::Clear,
        "full findings despite SafetyNet"
    );
}

#[test]
fn debugger_attachment_requires_root() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    assert!(stack.device.attach_app_debugger().is_err());
    assert!(!stack.device.is_app_debugger_attached());
}

#[test]
fn mpd_pssh_and_tenc_metadata_agree_for_every_app() {
    // The key-id census rests on the metadata layers agreeing; verify the
    // whole fleet's packaging end to end.
    let eco = fast_ecosystem();
    for profile in eco.profiles().to_vec() {
        let token = eco.accounts().subscribe(profile.slug, "metadata-probe");
        let raw =
            eco.backend().handle(&format!("manifest/{}/title-001", profile.slug), token.as_bytes());
        let Ok(raw) = raw else { continue }; // Netflix's manifest is wrapped
        let Ok(text) = String::from_utf8(raw) else { continue };
        let Ok(mpd) = wideleak::dash::mpd::Mpd::parse(&text) else { continue };
        let consistent =
            wideleak::monitor::assets::probe_metadata_consistency(eco.backend().as_ref(), &mpd)
                .unwrap();
        assert!(consistent, "{} metadata layers disagree", profile.name);
    }
}
