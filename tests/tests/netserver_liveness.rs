//! Liveness regressions for the TCP client transport.
//!
//! Both tests pin fixes to real hang/stale-read bugs in the pooled
//! [`TcpBinder`]:
//!
//! 1. The client's reply read had no deadline (a never-set shutdown
//!    flag guarded it), so a wedged server hung the caller forever. A
//!    stalled server must now surface the transient
//!    [`DrmError::Timeout`] within the configured deadline.
//! 2. The health-checked reconnect only covered write failures. A
//!    server restart *between checkout and read* — the write lands in
//!    the dead socket's buffer, then the read sees a clean EOF before
//!    any reply byte — hard-failed `BinderDied`. It must now cost
//!    exactly one reconnect and succeed.
//!
//! The fake servers here speak the wire format directly so the tests
//! control exactly when a connection goes quiet or dies.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use wideleak::android_drm::binder::{DrmCall, DrmReply, Transport};
use wideleak::android_drm::netserver::TcpBinder;
use wideleak::android_drm::wire::{encode_frame, frame_len, FrameBody, HEADER_LEN};
use wideleak::android_drm::DrmError;
use wideleak::bmff::types::WIDEVINE_SYSTEM_ID;

/// Reads one whole request frame off a fake server's socket.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let total = frame_len(&header).expect("client frames are well-formed");
    let mut frame = vec![0u8; total];
    frame[..HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[HEADER_LEN..])?;
    Ok(frame)
}

#[test]
fn a_stalled_server_surfaces_a_timeout_instead_of_hanging() {
    // A server that accepts — and even reads the request — but never
    // writes a reply byte. The old client blocked in read forever.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let _ = read_request(&mut stream);
        // Hold the socket open, replying with nothing, until the
        // client gives up and closes its end.
        let mut sink = [0u8; 64];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });
    let binder = TcpBinder::connect(addr)
        .pool_size(1)
        .read_timeout(Duration::from_millis(100))
        .build()
        .unwrap();
    let started = Instant::now();
    let reply = binder.transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID });
    assert_eq!(reply, Err(DrmError::Timeout { ms: 100 }));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the deadline bounded the read ({:?})",
        started.elapsed()
    );
    // The taxonomy marks the expiry as its own transient class, so app
    // retry policies treat it like a dropped binder, not a hard error.
    assert_eq!(reply.unwrap_err().class(), "timeout");
    drop(binder);
    stall.join().unwrap();
}

#[test]
fn eof_between_checkout_and_read_costs_exactly_one_reconnect() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reply_frame = encode_frame(&FrameBody::Reply(Ok(DrmReply::Bool(true))));
    let server = std::thread::spawn(move || {
        let mut accepts = 0u32;
        // Connection 1: serve one call, then read the next request and
        // close without a reply byte — the restart-between-checkout-
        // and-read shape (the write lands, the reply never comes).
        let (mut first, _) = listener.accept().unwrap();
        accepts += 1;
        read_request(&mut first).unwrap();
        first.write_all(&reply_frame).unwrap();
        read_request(&mut first).unwrap();
        drop(first);
        // Connection 2: the client's single retry; serve normally.
        let (mut second, _) = listener.accept().unwrap();
        accepts += 1;
        read_request(&mut second).unwrap();
        second.write_all(&reply_frame).unwrap();
        // No third accept: a client paying more than one reconnect
        // would hang here and fail the join's accept count.
        accepts
    });
    let binder = TcpBinder::connect(addr).pool_size(1).build().unwrap();
    let probe = DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID };
    assert!(binder.transact(probe.clone()).unwrap().into_bool().unwrap());
    // The pooled socket is checked out live; the write succeeds into a
    // connection the server then closes cleanly. The old client
    // returned BinderDied here.
    assert!(binder.transact(probe).unwrap().into_bool().unwrap());
    drop(binder);
    assert_eq!(server.join().unwrap(), 2, "the clean EOF cost exactly one reconnect");
}
