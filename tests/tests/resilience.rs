//! The fault-injection & resilience layer, end to end: an empty
//! [`FaultPlan`] must leave Table I byte-identical, a seeded plan must
//! replay to an identical injection-event stream, and the Q5 quick sweep
//! must be deterministic across runs while showing at least one app
//! recovering and one degrading.

use proptest::prelude::*;
use wideleak::faults::{FaultInjector, FaultKind, FaultPlan, Plane, Schedule};
use wideleak::monitor::report::render_table_1;
use wideleak::monitor::resilience::{run_resilience_study, scenarios, Outcome};
use wideleak::monitor::study::run_study;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::telemetry;

/// Table I as the seed build renders it (`--fast study`). The fault
/// plane is compiled into every request path, so this regression pins
/// the zero-fault behaviour to the byte.
#[rustfmt::skip]
const GOLDEN_TABLE_1: &str = concat!(
    "OTT                 Widevine (Q1)  Video (Q2)  Audio (Q2)  Subtitles (Q2)  Key Usage (Q3)  L3 discontinued playback (Q4)  \n",
    "--------------------------------------------------------------------------------------------------------------------------\n",
    "Netflix             WV             Encrypted   Clear       Clear           Minimum         plays                          \n",
    "Disney+             WV             Encrypted   Encrypted   Clear           Minimum         fails (provisioning)           \n",
    "Amazon Prime Video  WV (dagger)    Encrypted   Encrypted   Clear           Recommended     plays (custom DRM)             \n",
    "Hulu                WV             Encrypted   Encrypted   -               -               plays                          \n",
    "HBO Max             WV             Encrypted   Encrypted   Clear           -               fails (provisioning)           \n",
    "Starz               WV             Encrypted   Encrypted   -               Minimum         fails (provisioning)           \n",
    "myCANAL             WV             Encrypted   Clear       Clear           Minimum         plays                          \n",
    "Showtime            WV             Encrypted   Encrypted   Clear           Minimum         plays                          \n",
    "OCS                 WV             Encrypted   Encrypted   Clear           Minimum         plays                          \n",
    "Salto               WV             Encrypted   Clear       Clear           Minimum         plays                          \n",
);

#[test]
fn empty_fault_plan_reproduces_table_1_byte_identically() {
    let config = EcosystemConfig::fast_for_tests();
    assert!(config.fault_plan.is_empty(), "default config carries no faults");
    let eco = Ecosystem::new(config);
    let report = run_study(&eco).expect("study runs");
    assert_eq!(render_table_1(&report), GOLDEN_TABLE_1);
    assert_eq!(eco.fault_injector().injected_count(), 0, "nothing may fire");
}

fn storm_plan() -> FaultPlan {
    FaultPlan::builder()
        .server_fault("license/", FaultKind::ErrorCode, Schedule::PerMille { p: 400 })
        .server_fault("manifest/", FaultKind::Latency { ms: 250 }, Schedule::EveryNth { n: 3 })
        .binder_fault("decrypt_sample", FaultKind::Drop, Schedule::PerMille { p: 200 })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same plan + same seed = the same injection decisions, event for
    /// event, however probabilistic the schedules look.
    #[test]
    fn seeded_plan_replays_identically(seed in any::<u64>()) {
        let plan = storm_plan();
        let ops = [
            (Plane::Server, "license/netflix/title-001"),
            (Plane::Server, "manifest/netflix/title-001"),
            (Plane::Binder, "decrypt_sample"),
            (Plane::Server, "asset/netflix/title-001/video-1080p/init"),
        ];
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let inj = FaultInjector::new(&plan, seed);
                for _ in 0..50 {
                    for (plane, op) in &ops {
                        let _ = inj.decide(*plane, op);
                    }
                }
                inj.injection_log()
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}

/// The same seed drives the same playback through the same faults: the
/// full client/server/binder pipeline is replay-deterministic.
#[test]
fn faulted_playback_is_deterministic_end_to_end() {
    let run = || {
        let mut config = EcosystemConfig::fast_with_faults(storm_plan());
        config.seed = 99;
        let eco = Ecosystem::new(config);
        let stack = eco.boot_device(wideleak::device::catalog::DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "hulu", "replay-probe");
        let played = app.play("title-001").is_ok();
        (played, app.retry_stats(), eco.fault_injector().injection_log())
    };
    assert_eq!(run(), run());
}

#[test]
fn q5_quick_sweep_is_deterministic_and_differential() {
    telemetry::enable();
    let first = run_resilience_study(7, true);
    let second = run_resilience_study(7, true);
    assert_eq!(first, second, "two sweeps from one seed must agree");

    assert_eq!(first.cells.len(), scenarios().len() * 4);
    assert!(
        !first.recovered_apps().is_empty(),
        "at least one app must recover via retry/backoff or renewal"
    );
    assert!(
        !first.degraded_apps().is_empty(),
        "at least one app must degrade from L1/HD to L3-class playback"
    );
    assert!(!first.storming_apps().is_empty(), "the binder storm must exhaust a budget");

    // Every non-Played cell is backed by real injections.
    for cell in &first.cells {
        if !matches!(cell.outcome, Outcome::Played) {
            assert!(cell.faults_injected > 0, "{}/{} took faults", cell.scenario, cell.app_name);
        }
    }

    // The resilience machinery is observable through telemetry.
    let counters = telemetry::snapshot().counters;
    let has = |name: &str| counters.iter().any(|(n, v)| n == name && *v > 0);
    assert!(has("retry.attempt"), "retries must be counted");
    assert!(has("degraded.l3_fallback"), "degradations must be counted");
    assert!(has("license.renewed"), "renewals must be counted");
    assert!(
        counters.iter().any(|(n, v)| n.starts_with("fault.injected.") && *v > 0),
        "injected faults must be counted by kind"
    );
}
