//! System-wide security invariants: what should leak does, what should
//! not does not.

use wideleak::attack::memscan::scan_for_keyboxes;
use wideleak::attack::recover::{attack_app_on, ATTACK_TITLE};
use wideleak::cdm::oemcrypto::KEYBOX_FIX_VERSION;
use wideleak::device::catalog::{DeviceModel, SecurityLevel};
use wideleak_tests::fast_ecosystem;

#[test]
fn l3_boot_leaks_the_keybox_and_l1_boot_does_not() {
    let eco = fast_ecosystem();
    let l3 = eco.boot_device(DeviceModel::nexus_5(), true);
    assert_eq!(
        scan_for_keyboxes(l3.device.drm_process_memory()).len(),
        1,
        "CWE-922 on the software CDM"
    );
    let l1 = eco.boot_device(DeviceModel::pixel_6(), true);
    assert!(
        scan_for_keyboxes(l1.device.drm_process_memory()).is_empty(),
        "TEE keeps the keybox out of normal-world memory"
    );
}

#[test]
fn patched_cdm_version_closes_the_leak() {
    // A device model carrying the CVE-2021-0639 fix.
    let patched = DeviceModel {
        name: "Patched L3".into(),
        android_version: 12,
        cdm_version: KEYBOX_FIX_VERSION,
        security_level: SecurityLevel::L3,
        discontinued: false,
    };
    let eco = fast_ecosystem();
    let stack = eco.boot_device(patched.clone(), true);
    assert!(scan_for_keyboxes(stack.device.drm_process_memory()).is_empty());
    // And the full attack pipeline dies at the first step.
    let outcome = attack_app_on(&eco, "netflix", patched);
    assert!(!outcome.succeeded());
    assert!(!outcome.keybox_recovered);
}

#[test]
fn current_but_l3_hardware_is_still_vulnerable() {
    // "L3 because of hardware" (midrange, pre-fix CDM v16.0.0) falls to
    // the same attack as "L3 because discontinued" — the paper's point is
    // that the *protection level*, not device age alone, sets the risk.
    let eco = fast_ecosystem();
    let outcome = attack_app_on(&eco, "netflix", DeviceModel::midrange_l3());
    assert!(outcome.succeeded());
    assert_eq!(
        outcome.media.unwrap().best_resolution(),
        Some((960, 540)),
        "still no HD keys for L3"
    );
}

#[test]
fn hd_keys_never_reach_l3_clients() {
    // Attack a lenient app on the discontinued device and check the key
    // census: no recovered key unlocks the 1080p rendition.
    let eco = fast_ecosystem();
    let outcome = attack_app_on(&eco, "showtime", DeviceModel::nexus_5());
    assert!(outcome.succeeded());
    let hd_kid =
        wideleak::ott::content::kid_from_label(&format!("showtime/{ATTACK_TITLE}/video-1080"));
    assert!(
        outcome.content_keys.iter().all(|(kid, _)| *kid != hd_kid),
        "1080p key must never be licensed to an L3 device"
    );
}

#[test]
fn app_process_never_sees_keys_or_plaintext_buffers() {
    // The MovieStealer-defeating property: the app receives decrypted
    // frames only through MediaCodec, and key material never crosses the
    // Binder as raw bytes. We check the public API surface: no DrmReply
    // variant carries a content key, and the CDM's key types redact their
    // Debug output.
    let key = wideleak::cenc::keys::ContentKey([0x42; 16]);
    assert!(!format!("{key:?}").contains("42"));
    let lk = format!("{:?}", wideleak::cdm::ladder::derive_session_keys(&[1; 16], b"e", b"m"));
    assert!(lk.contains("redacted"));
}

#[test]
fn secure_world_isolation_survives_attacks() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::pixel_6(), true);
    let app = eco.install_app(&stack, "netflix", "l1-victim");
    app.play(ATTACK_TITLE).unwrap();
    // Even after full playback, the normal world holds no keybox and no
    // content keys.
    let memory = stack.device.scan_drm_process_memory().unwrap();
    assert!(scan_for_keyboxes(memory).is_empty());
    let kid_540 = wideleak::ott::content::key_from_label("netflix/title-001/video-540");
    assert!(
        memory.scan(&kid_540.0).is_empty(),
        "content keys never land in normal-world memory on L1"
    );
}

#[test]
fn non_rooted_devices_cannot_be_instrumented() {
    let eco = fast_ecosystem();
    let stack = eco.boot_device(DeviceModel::nexus_5(), false);
    assert!(stack.device.scan_drm_process_memory().is_err());
    assert!(stack.device.attach_hooks(Box::new(|_| {})).is_err());
    assert!(stack.device.apply_ssl_repinning_bypass().is_err());
}
