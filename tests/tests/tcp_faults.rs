//! The fault plane over real sockets: frame corruption and connection
//! drops injected by a [`FaultPlan`] must surface as typed [`DrmError`]s
//! on the TCP transport, be absorbed by the apps' existing retry/backoff
//! machinery, and replay deterministically per seed.

use wideleak::android_drm::binder::{DrmCall, TransportKind};
use wideleak::android_drm::wire::WireError;
use wideleak::android_drm::DrmError;
use wideleak::device::catalog::DeviceModel;
use wideleak::faults::{FaultKind, FaultPlan, Schedule};
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::telemetry;

fn tcp_ecosystem(plan: FaultPlan, seed: u64) -> Ecosystem {
    let mut config = EcosystemConfig::fast_with_faults(plan);
    config.seed = seed;
    config.transport = TransportKind::Tcp;
    Ecosystem::new(config)
}

/// A garbled frame arrives as a typed wire error, not a panic, a hang or
/// a silent wrong answer: the XOR destroys the magic, so the client sees
/// [`WireError::BadMagic`] wrapped in [`DrmError::Wire`].
#[test]
fn garbled_frames_surface_as_typed_wire_errors() {
    let plan = FaultPlan::builder()
        .binder_fault("is_provisioned", FaultKind::GarbleBody, Schedule::Always)
        .build();
    let eco = tcp_ecosystem(plan, 5);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    match stack.binder.transact(DrmCall::IsProvisioned) {
        Err(DrmError::Wire(WireError::BadMagic { .. })) => {}
        other => panic!("expected a typed BadMagic wire error, got {other:?}"),
    }
    assert!(eco.fault_injector().injected_count() > 0, "the garble actually fired");
}

/// A truncated frame maps to the Truncated variant of the taxonomy: the
/// header promises more bytes than the connection delivers.
#[test]
fn truncated_frames_surface_as_truncated_wire_errors() {
    let plan = FaultPlan::builder()
        .binder_fault("is_provisioned", FaultKind::TruncateBody { keep: 6 }, Schedule::Always)
        .build();
    let eco = tcp_ecosystem(plan, 5);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    match stack.binder.transact(DrmCall::IsProvisioned) {
        Err(DrmError::Wire(WireError::Truncated { .. })) => {}
        other => panic!("expected a typed Truncated wire error, got {other:?}"),
    }
}

/// Mid-playback frame corruption is transient: the app's retry/backoff
/// absorbs a first-call garble and the playback still completes.
#[test]
fn retry_backoff_recovers_playback_from_frame_corruption() {
    let plan = FaultPlan::builder()
        .binder_fault("decrypt_sample", FaultKind::GarbleBody, Schedule::FirstN { n: 2 })
        .build();
    let eco = tcp_ecosystem(plan, 5);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "netflix", "tcp-fault-probe");
    app.play("title-001").expect("retry/backoff absorbs the corrupted frames");
    let stats = app.retry_stats();
    assert!(stats.retries >= 2, "each garbled frame cost a retry: {stats:?}");
    assert!(eco.fault_injector().injected_count() >= 2);
}

/// A dropped connection severs the pooled socket for real: the client
/// sees `BinderDied`, the pool health-check reconnects (witnessed by the
/// `binder.tcp.reconnects` counter), and the retry layer replays the
/// call to a working connection.
#[test]
fn connection_drops_reconnect_and_recover() {
    telemetry::enable();
    let reconnects_before = reconnect_count();
    let plan = FaultPlan::builder()
        .binder_fault("decrypt_sample", FaultKind::Drop, Schedule::FirstN { n: 2 })
        .build();
    let eco = tcp_ecosystem(plan, 5);
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "netflix", "tcp-drop-probe");
    app.play("title-001").expect("retry/backoff survives the dropped connections");
    assert!(app.retry_stats().retries >= 2, "the drops were retried");
    assert!(
        reconnect_count() > reconnects_before,
        "the pool re-dialed after its connections were severed"
    );
}

fn reconnect_count() -> u64 {
    telemetry::snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "binder.tcp.reconnects")
        .map_or(0, |&(_, v)| v)
}

/// The whole faulted pipeline over TCP is a pure function of the seed:
/// same seed, same injection log, same retry counts, same outcome.
#[test]
fn tcp_fault_runs_replay_deterministically_per_seed() {
    let run = |seed: u64| {
        let plan = FaultPlan::builder()
            .binder_fault("decrypt_sample", FaultKind::GarbleBody, Schedule::PerMille { p: 300 })
            .binder_fault("get_key_request", FaultKind::Drop, Schedule::PerMille { p: 200 })
            .build();
        let eco = tcp_ecosystem(plan, seed);
        let stack = eco.boot_device(DeviceModel::pixel_6(), false);
        let app = eco.install_app(&stack, "hulu", "tcp-replay-probe");
        let played = app.play("title-001").is_ok();
        (played, app.retry_stats(), eco.fault_injector().injection_log())
    };
    for seed in [3, 17] {
        assert_eq!(run(seed), run(seed), "seed {seed} must replay identically over TCP");
    }
}
