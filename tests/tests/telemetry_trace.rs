//! End-to-end telemetry trace: a full `--fast` study with the global
//! collector enabled must produce spans and counters covering every
//! layer of the stack — binder transactions, CDM provisioning, OTT
//! server requests and per-app study spans for all ten apps.
//!
//! Deliberately a single `#[test]`: the global collector is process-wide
//! state, and this file being its own integration binary keeps other
//! tests from interleaving records into the snapshot.

use wideleak::monitor::study::run_study;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::telemetry;
use wideleak::telemetry::FieldValue;

#[test]
fn full_study_emits_cross_layer_telemetry() {
    telemetry::enable();
    let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
    let report = run_study(&eco).expect("fast study runs");
    let snapshot = telemetry::snapshot();

    // --- Binder layer: per-transaction spans with a kind field. -------
    let binder_spans: Vec<_> =
        snapshot.spans.iter().filter(|s| s.name.starts_with("binder.transact")).collect();
    assert!(!binder_spans.is_empty(), "no binder transaction spans");
    assert!(
        binder_spans.iter().all(|s| s.fields.iter().any(|(k, _)| *k == "kind")),
        "every binder span carries its transaction kind"
    );
    let (_, binder_hist) = snapshot
        .histograms
        .iter()
        .find(|(n, _)| n == "binder.transact.in_process")
        .expect("binder latency histogram registered");
    assert!(binder_hist.count > 0);
    assert!(binder_hist.p50_ns <= binder_hist.p90_ns && binder_hist.p90_ns <= binder_hist.p99_ns);

    // --- CDM layer: at least one provisioning round-trip. -------------
    let round_trips = snapshot
        .counters
        .iter()
        .find(|(n, _)| n == "cdm.provisioning.round_trips")
        .map_or(0, |(_, v)| *v);
    assert!(round_trips >= 1, "no provisioning round-trips recorded");

    // --- OTT server layer: request counters per endpoint. -------------
    for endpoint in ["provision", "license", "manifest"] {
        let name = format!("ott.server.requests.{endpoint}");
        let hits = snapshot.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v);
        assert!(hits > 0, "no {name} requests recorded");
    }

    // --- Study layer: one study.app span per evaluated app. -----------
    let app_spans: Vec<&str> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == "study.app")
        .filter_map(|s| {
            s.fields.iter().find_map(|(k, v)| match (k, v) {
                (&"app", FieldValue::Str(slug)) => Some(slug.as_str()),
                _ => None,
            })
        })
        .collect();
    assert_eq!(report.findings.len(), eco.profiles().len(), "study covered all apps");
    for profile in eco.profiles() {
        assert!(app_spans.contains(&profile.slug), "missing study.app span for {}", profile.slug);
    }

    // Per-question sub-spans exist and nest under a study.app span.
    let q_span = snapshot
        .spans
        .iter()
        .find(|s| s.name.starts_with("study.q"))
        .expect("per-question spans recorded");
    let parent = q_span.parent.expect("question spans have a parent");
    let parent_span = snapshot.spans.iter().find(|s| s.id == parent).unwrap();
    assert!(
        parent_span.name == "study.app" || parent_span.name.starts_with("study.run"),
        "question span nests under the study, got {}",
        parent_span.name
    );

    // --- Export sanity: JSONL is non-empty, one object per line. ------
    let jsonl = telemetry::to_jsonl(&snapshot);
    assert!(jsonl.lines().count() > 100, "export suspiciously small");
    let parsed = telemetry::export::parse_jsonl(&jsonl);
    assert_eq!(parsed.skipped, 0, "every exported line parses");
    assert_eq!(parsed.counters.len(), snapshot.counters.len());
}
