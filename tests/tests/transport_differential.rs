//! The transport differential battery: the binder transport is an
//! implementation detail, so the paper's headline artifacts must be
//! byte-identical whether DRM transactions run in-process, through the
//! threaded worker pool, or over real TCP sockets with the framed wire
//! codec.

use wideleak::android_drm::binder::TransportKind;
use wideleak::monitor::report::render_table_1;
use wideleak::monitor::resilience::{
    render_q5, run_resilience_study_on, run_resilience_study_with, scenarios,
};
use wideleak::monitor::study::run_study;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

fn table_1_on(transport: TransportKind) -> String {
    table_1_with(transport, 1)
}

fn table_1_with(transport: TransportKind, tcp_pipeline_depth: usize) -> String {
    let mut config = EcosystemConfig::fast_for_tests();
    config.transport = transport;
    config.tcp_pipeline_depth = tcp_pipeline_depth;
    let eco = Ecosystem::new(config);
    let report = run_study(&eco).unwrap_or_else(|e| panic!("{transport} study runs: {e}"));
    render_table_1(&report)
}

/// Table I — the full ten-app Q1–Q4 study — replayed over all three
/// transports. The reports must agree to the byte.
#[test]
fn table_1_is_byte_identical_across_all_transports() {
    let baseline = table_1_on(TransportKind::InProcess);
    assert!(baseline.contains("Netflix"), "the study produced a real table");
    for &transport in &TransportKind::ALL[1..] {
        assert_eq!(
            table_1_on(transport),
            baseline,
            "Table I must not depend on the {transport} transport"
        );
    }
}

/// One Q5 resilience scenario (the binder drop storm — the one that
/// stresses the transport itself) swept over all three transports from
/// one seed: identical cells, identical rendered report.
#[test]
fn q5_binder_storm_is_byte_identical_across_all_transports() {
    assert!(
        scenarios().iter().any(|s| s.name == "binder-drop-storm"),
        "the scenario the differential battery replays still exists"
    );
    let reports: Vec<_> =
        TransportKind::ALL.iter().map(|&t| run_resilience_study_on(11, true, t)).collect();
    let baseline = &reports[0];
    assert!(
        baseline.cells.iter().any(|c| c.scenario == "binder-drop-storm" && c.faults_injected > 0),
        "the storm scenario injected real faults"
    );
    for (report, &transport) in reports.iter().zip(TransportKind::ALL.iter()).skip(1) {
        assert_eq!(report, baseline, "Q5 cells must not depend on the {transport} transport");
        assert_eq!(
            render_q5(report),
            render_q5(baseline),
            "the rendered Q5 report must not depend on the {transport} transport"
        );
    }
}

/// Pipelined TCP (eight calls in flight per shared connection,
/// correlated by wire-v3 request ids) is still the same transport from
/// the study's point of view: Table I must stay byte-identical with
/// the in-process baseline.
#[test]
fn table_1_is_byte_identical_under_tcp_pipelining() {
    let baseline = table_1_on(TransportKind::InProcess);
    assert_eq!(
        table_1_with(TransportKind::Tcp, 8),
        baseline,
        "Table I must not depend on TCP pipelining"
    );
}

/// The Q5 drop-storm sweep under pipelining: out-of-order replies and
/// shared-connection fault realisation must not move a single cell.
#[test]
fn q5_binder_storm_is_byte_identical_under_tcp_pipelining() {
    let baseline = run_resilience_study_on(11, true, TransportKind::InProcess);
    let pipelined = run_resilience_study_with(11, true, TransportKind::Tcp, 8);
    assert_eq!(pipelined, baseline, "Q5 cells must not depend on TCP pipelining");
    assert_eq!(render_q5(&pipelined), render_q5(&baseline));
}
