//! The TCP wire codec under adversarial inputs: `decode(encode(x)) == x`
//! for arbitrary generated calls and replies, and the decoder must
//! survive corpus-driven mutation and random-garbage fuzzing without a
//! panic, returning only the typed [`WireError`] taxonomy.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use wideleak::android_drm::binder::{DrmCall, DrmReply};
use wideleak::android_drm::wire::{
    decode_frame, decode_frame_full, encode_frame, encode_frame_full, peek_request_id, FrameBody,
    WireError, HEADER_LEN, MAX_PAYLOAD, TRAILER_LEN,
};
use wideleak::android_drm::DrmError;
use wideleak::bmff::types::{KeyId, Subsample};
use wideleak::cdm::oemcrypto::SampleCrypto;
use wideleak::cdm::CdmError;
use wideleak::crypto::CryptoError;
use wideleak::tee::TeeError;

fn kid_strategy() -> impl Strategy<Value = KeyId> {
    any::<[u8; 16]>().prop_map(KeyId)
}

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..600)
}

fn subsamples_strategy() -> impl Strategy<Value = Vec<Subsample>> {
    proptest::collection::vec(
        (any::<u16>(), any::<u32>())
            .prop_map(|(clear_bytes, encrypted_bytes)| Subsample { clear_bytes, encrypted_bytes }),
        0..5,
    )
}

fn crypto_strategy() -> impl Strategy<Value = SampleCrypto> {
    prop_oneof![
        any::<[u8; 8]>().prop_map(|iv| SampleCrypto::Cenc { iv }),
        (any::<[u8; 16]>(), any::<u8>(), any::<u8>()).prop_map(|(constant_iv, crypt, skip)| {
            SampleCrypto::Cbcs { constant_iv, crypt_blocks: crypt, skip_blocks: skip }
        }),
    ]
}

/// Every [`DrmCall`] variant with arbitrary field contents.
fn call_strategy() -> impl Strategy<Value = DrmCall> {
    prop_oneof![
        any::<[u8; 16]>().prop_map(|uuid| DrmCall::IsSchemeSupported { uuid }),
        any::<[u8; 16]>().prop_map(|nonce| DrmCall::OpenSession { nonce }),
        any::<u32>().prop_map(|session_id| DrmCall::CloseSession { session_id }),
        Just(DrmCall::IsProvisioned),
        any::<[u8; 16]>().prop_map(|nonce| DrmCall::GetProvisionRequest { nonce }),
        (any::<[u8; 16]>(), bytes_strategy()).prop_map(|(nonce, response)| {
            DrmCall::ProvideProvisionResponse { nonce, response }
        }),
        (any::<u32>(), "[a-z0-9-]{0,40}", proptest::collection::vec(kid_strategy(), 0..6))
            .prop_map(|(session_id, content_id, key_ids)| DrmCall::GetKeyRequest {
                session_id,
                content_id,
                key_ids,
            }),
        (any::<u32>(), bytes_strategy()).prop_map(|(session_id, response)| {
            DrmCall::ProvideKeyResponse { session_id, response }
        }),
        (any::<u32>(), kid_strategy(), crypto_strategy(), bytes_strategy(), subsamples_strategy())
            .prop_map(|(session_id, kid, crypto, data, subsamples)| DrmCall::DecryptSample {
                session_id,
                kid,
                crypto,
                data,
                subsamples,
            }),
        (any::<u32>(), kid_strategy(), any::<[u8; 16]>(), bytes_strategy()).prop_map(
            |(session_id, kid, iv, data)| DrmCall::GenericEncrypt { session_id, kid, iv, data }
        ),
        (any::<u32>(), kid_strategy(), any::<[u8; 16]>(), bytes_strategy()).prop_map(
            |(session_id, kid, iv, data)| DrmCall::GenericDecrypt { session_id, kid, iv, data }
        ),
        (any::<u32>(), kid_strategy(), bytes_strategy())
            .prop_map(|(session_id, kid, data)| { DrmCall::GenericSign { session_id, kid, data } }),
        (any::<u32>(), kid_strategy(), bytes_strategy(), bytes_strategy()).prop_map(
            |(session_id, kid, data, signature)| DrmCall::GenericVerify {
                session_id,
                kid,
                data,
                signature,
            }
        ),
    ]
}

/// Every [`DrmReply`] shape and a cross-section of the nested error
/// taxonomy (CDM, TEE, crypto, wire), including `&'static str` reason
/// fields that must survive the intern round trip.
fn reply_corpus() -> Vec<Result<DrmReply, DrmError>> {
    vec![
        Ok(DrmReply::Unit),
        Ok(DrmReply::Bool(true)),
        Ok(DrmReply::SessionId(u32::MAX)),
        Ok(DrmReply::Bytes(vec![0xA5; 257])),
        Ok(DrmReply::KeyIds(vec![KeyId([0; 16]), KeyId([0xFF; 16])])),
        Err(DrmError::UnsupportedScheme { uuid: [0xDE; 16] }),
        Err(DrmError::BinderDied),
        Err(DrmError::ServerPanic),
        Err(DrmError::BadReply),
        Err(DrmError::Cdm(CdmError::NotProvisioned)),
        Err(DrmError::Cdm(CdmError::BadKeybox { reason: "CRC mismatch" })),
        Err(DrmError::Cdm(CdmError::Rejected { reason: "device revoked".into() })),
        Err(DrmError::Cdm(CdmError::Crypto(CryptoError::BadPadding))),
        Err(DrmError::Cdm(CdmError::Tee(TeeError::AccessDenied { reason: "not secure" }))),
        Err(DrmError::Wire(WireError::BadMagic { found: *b"HTTP" })),
        Err(DrmError::Wire(WireError::Truncated { needed: 12, got: 3 })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: any call the binder can carry survives
    /// the wire byte-identically.
    #[test]
    fn arbitrary_calls_round_trip(call in call_strategy()) {
        let frame = encode_frame(&FrameBody::Call(call.clone()));
        prop_assert!(frame.len() >= HEADER_LEN + TRAILER_LEN);
        let (body, consumed) = decode_frame(&frame).expect("own frames must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(body, FrameBody::Call(call));
    }

    /// A frame followed by trailing stream bytes decodes to exactly the
    /// frame: `consumed` tells the stream reader where the next one
    /// starts, and the tail never leaks into the payload.
    #[test]
    fn framing_survives_a_busy_stream(call in call_strategy(), tail in bytes_strategy()) {
        let frame = encode_frame(&FrameBody::Call(call.clone()));
        let mut stream = frame.clone();
        stream.extend_from_slice(&tail);
        let (body, consumed) = decode_frame(&stream).expect("decode from the stream front");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(body, FrameBody::Call(call));
    }

    /// Pure garbage never panics the decoder; it can only produce a
    /// typed error (a random buffer forging a valid frame would have to
    /// forge magic, version and CRC at once).
    #[test]
    fn random_garbage_yields_typed_errors(garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        match decode_frame(&garbage) {
            Ok(_) => {}
            Err(
                WireError::Truncated { .. }
                | WireError::Oversized { .. }
                | WireError::BadMagic { .. }
                | WireError::UnsupportedVersion { .. }
                | WireError::BadCrc { .. }
                | WireError::Malformed { .. },
            ) => {}
        }
    }
}

#[test]
fn reply_corpus_round_trips() {
    for reply in reply_corpus() {
        let frame = encode_frame(&FrameBody::Reply(reply.clone()));
        let (body, consumed) = decode_frame(&frame).expect("own frames must decode");
        assert_eq!(consumed, frame.len());
        assert_eq!(body, FrameBody::Reply(reply));
    }
}

/// Corpus-driven mutation fuzz: take every valid frame in the corpus and
/// hammer it with seeded byte flips, splices and length rewrites. The
/// decoder must never panic, and a single-byte change can never decode
/// successfully — the CRC (or an earlier header check) has to catch it.
#[test]
fn mutated_corpus_never_panics_and_never_false_decodes() {
    let mut corpus: Vec<Vec<u8>> =
        reply_corpus().into_iter().map(|r| encode_frame(&FrameBody::Reply(r))).collect();
    corpus.push(encode_frame(&FrameBody::Call(DrmCall::IsProvisioned)));
    corpus.push(encode_frame(&FrameBody::Call(DrmCall::DecryptSample {
        session_id: 3,
        kid: KeyId([1; 16]),
        crypto: SampleCrypto::Cenc { iv: [2; 8] },
        data: vec![0x42; 96],
        subsamples: vec![Subsample { clear_bytes: 16, encrypted_bytes: 80 }],
    })));

    let mut rng = StdRng::seed_from_u64(0x57_49_44_45);
    for frame in &corpus {
        // Single-byte XOR at every position: always a typed error.
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            let delta = (rng.next_u32() % 255) as u8 + 1;
            bad[pos] ^= delta;
            assert!(
                decode_frame(&bad).is_err(),
                "a flipped byte at {pos} must not decode (frame len {})",
                frame.len()
            );
        }
        // Random splices and rewrites: only "no panic, typed error" is
        // guaranteed (a splice may reassemble a valid frame prefix).
        for _ in 0..64 {
            let mut bad = frame.clone();
            match rng.next_u32() % 3 {
                0 => {
                    let cut = (rng.next_u32() as usize) % (bad.len() + 1);
                    bad.truncate(cut);
                }
                1 => {
                    let extra = (rng.next_u32() as usize) % 32;
                    bad.extend(std::iter::repeat_n(0xAAu8, extra));
                }
                _ => {
                    let len = (rng.next_u32() as usize) % (MAX_PAYLOAD * 2);
                    bad[8..12].copy_from_slice(&(len as u32).to_le_bytes());
                }
            }
            let _ = decode_frame(&bad);
        }
    }
}

/// Rewrites a v3 frame's header version byte to an older revision and
/// recomputes the CRC, producing the frame a downlevel peer would have
/// sent (a bare frame carries no extension flags, so the payload layout
/// is identical across versions).
fn downlevel_frame(version: u8, body: &FrameBody) -> Vec<u8> {
    let mut frame = encode_frame(body);
    assert_eq!(frame[6], 0, "a bare frame carries no extension flags");
    frame[4] = version;
    let body_end = frame.len() - TRAILER_LEN;
    let crc = wideleak::crypto::crc32::crc32(&frame[..body_end]);
    frame[body_end..].copy_from_slice(&crc.to_le_bytes());
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The v3 pipelining extension: any call tagged with any request id
    /// survives the wire byte-identically, the id is visible both to
    /// the cheap routing peek and to the full decode, and it never
    /// bleeds into the body.
    #[test]
    fn request_ids_round_trip_on_arbitrary_calls(call in call_strategy(), id in any::<u64>()) {
        let frame = encode_frame_full(&FrameBody::Call(call.clone()), None, Some(id));
        prop_assert_eq!(peek_request_id(&frame), Some(id));
        let (body, meta, consumed) = decode_frame_full(&frame).expect("own frames must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(meta.request_id, Some(id));
        prop_assert!(meta.ctx.is_none());
        prop_assert_eq!(body, FrameBody::Call(call));
    }

    /// Downlevel compatibility: v1 and v2 frames (which cannot carry a
    /// request id) still decode under the v3 decoder, with no id and no
    /// peek hit — the pipelined reader's fallback path.
    #[test]
    fn downlevel_frames_decode_with_no_request_id(call in call_strategy(), version in 1u8..=2) {
        let frame = downlevel_frame(version, &FrameBody::Call(call.clone()));
        prop_assert_eq!(peek_request_id(&frame), None);
        let (body, meta, consumed) = decode_frame_full(&frame).expect("downlevel frames decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(meta.request_id, None);
        prop_assert!(meta.ctx.is_none());
        prop_assert_eq!(body, FrameBody::Call(call));
    }
}

/// Every reply shape in the corpus — including the nested error
/// taxonomy — round-trips with a request id attached, exactly as the
/// reactor echoes ids on replies.
#[test]
fn reply_corpus_round_trips_with_request_ids() {
    for (i, reply) in reply_corpus().into_iter().enumerate() {
        let id = (i as u64).wrapping_mul(0x0101_0101_0101_0101).wrapping_add(7);
        let frame = encode_frame_full(&FrameBody::Reply(reply.clone()), None, Some(id));
        assert_eq!(peek_request_id(&frame), Some(id));
        let (body, meta, consumed) = decode_frame_full(&frame).expect("own frames must decode");
        assert_eq!(consumed, frame.len());
        assert_eq!(meta.request_id, Some(id));
        assert_eq!(body, FrameBody::Reply(reply));
    }
}

/// The request-id flag is only legal from v3 on. A v2 frame carrying it
/// breaks v2's reserved-bits promise and must be rejected as malformed,
/// not silently decoded.
#[test]
fn a_v2_frame_carrying_the_request_id_flag_is_malformed() {
    let mut frame = encode_frame_full(&FrameBody::Call(DrmCall::IsProvisioned), None, Some(9));
    frame[4] = 2;
    let body_end = frame.len() - TRAILER_LEN;
    let crc = wideleak::crypto::crc32::crc32(&frame[..body_end]);
    frame[body_end..].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(
        decode_frame_full(&frame),
        Err(WireError::Malformed { what: "unknown header flags" })
    );
}

/// The routing peek deliberately skips the CRC, so a flipped id byte
/// can mislead it — but the full decode the waiter then performs always
/// catches the corruption. No flipped byte anywhere in an id-tagged
/// frame may survive both layers.
#[test]
fn flipped_id_bytes_never_survive_the_full_decode() {
    let frame = encode_frame_full(
        &FrameBody::Call(DrmCall::CloseSession { session_id: 44 }),
        None,
        Some(0xDEAD_BEEF_F00D_CAFE),
    );
    for pos in HEADER_LEN..HEADER_LEN + 8 {
        let mut bad = frame.clone();
        bad[pos] ^= 0x40;
        assert!(
            decode_frame_full(&bad).is_err(),
            "a flipped request-id byte at {pos} must not fully decode"
        );
    }
}
