//! The TCP wire codec under adversarial inputs: `decode(encode(x)) == x`
//! for arbitrary generated calls and replies, and the decoder must
//! survive corpus-driven mutation and random-garbage fuzzing without a
//! panic, returning only the typed [`WireError`] taxonomy.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use wideleak::android_drm::binder::{DrmCall, DrmReply};
use wideleak::android_drm::wire::{
    decode_frame, encode_frame, FrameBody, WireError, HEADER_LEN, MAX_PAYLOAD, TRAILER_LEN,
};
use wideleak::android_drm::DrmError;
use wideleak::bmff::types::{KeyId, Subsample};
use wideleak::cdm::oemcrypto::SampleCrypto;
use wideleak::cdm::CdmError;
use wideleak::crypto::CryptoError;
use wideleak::tee::TeeError;

fn kid_strategy() -> impl Strategy<Value = KeyId> {
    any::<[u8; 16]>().prop_map(KeyId)
}

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..600)
}

fn subsamples_strategy() -> impl Strategy<Value = Vec<Subsample>> {
    proptest::collection::vec(
        (any::<u16>(), any::<u32>())
            .prop_map(|(clear_bytes, encrypted_bytes)| Subsample { clear_bytes, encrypted_bytes }),
        0..5,
    )
}

fn crypto_strategy() -> impl Strategy<Value = SampleCrypto> {
    prop_oneof![
        any::<[u8; 8]>().prop_map(|iv| SampleCrypto::Cenc { iv }),
        (any::<[u8; 16]>(), any::<u8>(), any::<u8>()).prop_map(|(constant_iv, crypt, skip)| {
            SampleCrypto::Cbcs { constant_iv, crypt_blocks: crypt, skip_blocks: skip }
        }),
    ]
}

/// Every [`DrmCall`] variant with arbitrary field contents.
fn call_strategy() -> impl Strategy<Value = DrmCall> {
    prop_oneof![
        any::<[u8; 16]>().prop_map(|uuid| DrmCall::IsSchemeSupported { uuid }),
        any::<[u8; 16]>().prop_map(|nonce| DrmCall::OpenSession { nonce }),
        any::<u32>().prop_map(|session_id| DrmCall::CloseSession { session_id }),
        Just(DrmCall::IsProvisioned),
        any::<[u8; 16]>().prop_map(|nonce| DrmCall::GetProvisionRequest { nonce }),
        (any::<[u8; 16]>(), bytes_strategy()).prop_map(|(nonce, response)| {
            DrmCall::ProvideProvisionResponse { nonce, response }
        }),
        (any::<u32>(), "[a-z0-9-]{0,40}", proptest::collection::vec(kid_strategy(), 0..6))
            .prop_map(|(session_id, content_id, key_ids)| DrmCall::GetKeyRequest {
                session_id,
                content_id,
                key_ids,
            }),
        (any::<u32>(), bytes_strategy()).prop_map(|(session_id, response)| {
            DrmCall::ProvideKeyResponse { session_id, response }
        }),
        (any::<u32>(), kid_strategy(), crypto_strategy(), bytes_strategy(), subsamples_strategy())
            .prop_map(|(session_id, kid, crypto, data, subsamples)| DrmCall::DecryptSample {
                session_id,
                kid,
                crypto,
                data,
                subsamples,
            }),
        (any::<u32>(), kid_strategy(), any::<[u8; 16]>(), bytes_strategy()).prop_map(
            |(session_id, kid, iv, data)| DrmCall::GenericEncrypt { session_id, kid, iv, data }
        ),
        (any::<u32>(), kid_strategy(), any::<[u8; 16]>(), bytes_strategy()).prop_map(
            |(session_id, kid, iv, data)| DrmCall::GenericDecrypt { session_id, kid, iv, data }
        ),
        (any::<u32>(), kid_strategy(), bytes_strategy())
            .prop_map(|(session_id, kid, data)| { DrmCall::GenericSign { session_id, kid, data } }),
        (any::<u32>(), kid_strategy(), bytes_strategy(), bytes_strategy()).prop_map(
            |(session_id, kid, data, signature)| DrmCall::GenericVerify {
                session_id,
                kid,
                data,
                signature,
            }
        ),
    ]
}

/// Every [`DrmReply`] shape and a cross-section of the nested error
/// taxonomy (CDM, TEE, crypto, wire), including `&'static str` reason
/// fields that must survive the intern round trip.
fn reply_corpus() -> Vec<Result<DrmReply, DrmError>> {
    vec![
        Ok(DrmReply::Unit),
        Ok(DrmReply::Bool(true)),
        Ok(DrmReply::SessionId(u32::MAX)),
        Ok(DrmReply::Bytes(vec![0xA5; 257])),
        Ok(DrmReply::KeyIds(vec![KeyId([0; 16]), KeyId([0xFF; 16])])),
        Err(DrmError::UnsupportedScheme { uuid: [0xDE; 16] }),
        Err(DrmError::BinderDied),
        Err(DrmError::ServerPanic),
        Err(DrmError::BadReply),
        Err(DrmError::Cdm(CdmError::NotProvisioned)),
        Err(DrmError::Cdm(CdmError::BadKeybox { reason: "CRC mismatch" })),
        Err(DrmError::Cdm(CdmError::Rejected { reason: "device revoked".into() })),
        Err(DrmError::Cdm(CdmError::Crypto(CryptoError::BadPadding))),
        Err(DrmError::Cdm(CdmError::Tee(TeeError::AccessDenied { reason: "not secure" }))),
        Err(DrmError::Wire(WireError::BadMagic { found: *b"HTTP" })),
        Err(DrmError::Wire(WireError::Truncated { needed: 12, got: 3 })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: any call the binder can carry survives
    /// the wire byte-identically.
    #[test]
    fn arbitrary_calls_round_trip(call in call_strategy()) {
        let frame = encode_frame(&FrameBody::Call(call.clone()));
        prop_assert!(frame.len() >= HEADER_LEN + TRAILER_LEN);
        let (body, consumed) = decode_frame(&frame).expect("own frames must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(body, FrameBody::Call(call));
    }

    /// A frame followed by trailing stream bytes decodes to exactly the
    /// frame: `consumed` tells the stream reader where the next one
    /// starts, and the tail never leaks into the payload.
    #[test]
    fn framing_survives_a_busy_stream(call in call_strategy(), tail in bytes_strategy()) {
        let frame = encode_frame(&FrameBody::Call(call.clone()));
        let mut stream = frame.clone();
        stream.extend_from_slice(&tail);
        let (body, consumed) = decode_frame(&stream).expect("decode from the stream front");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(body, FrameBody::Call(call));
    }

    /// Pure garbage never panics the decoder; it can only produce a
    /// typed error (a random buffer forging a valid frame would have to
    /// forge magic, version and CRC at once).
    #[test]
    fn random_garbage_yields_typed_errors(garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        match decode_frame(&garbage) {
            Ok(_) => {}
            Err(
                WireError::Truncated { .. }
                | WireError::Oversized { .. }
                | WireError::BadMagic { .. }
                | WireError::UnsupportedVersion { .. }
                | WireError::BadCrc { .. }
                | WireError::Malformed { .. },
            ) => {}
        }
    }
}

#[test]
fn reply_corpus_round_trips() {
    for reply in reply_corpus() {
        let frame = encode_frame(&FrameBody::Reply(reply.clone()));
        let (body, consumed) = decode_frame(&frame).expect("own frames must decode");
        assert_eq!(consumed, frame.len());
        assert_eq!(body, FrameBody::Reply(reply));
    }
}

/// Corpus-driven mutation fuzz: take every valid frame in the corpus and
/// hammer it with seeded byte flips, splices and length rewrites. The
/// decoder must never panic, and a single-byte change can never decode
/// successfully — the CRC (or an earlier header check) has to catch it.
#[test]
fn mutated_corpus_never_panics_and_never_false_decodes() {
    let mut corpus: Vec<Vec<u8>> =
        reply_corpus().into_iter().map(|r| encode_frame(&FrameBody::Reply(r))).collect();
    corpus.push(encode_frame(&FrameBody::Call(DrmCall::IsProvisioned)));
    corpus.push(encode_frame(&FrameBody::Call(DrmCall::DecryptSample {
        session_id: 3,
        kid: KeyId([1; 16]),
        crypto: SampleCrypto::Cenc { iv: [2; 8] },
        data: vec![0x42; 96],
        subsamples: vec![Subsample { clear_bytes: 16, encrypted_bytes: 80 }],
    })));

    let mut rng = StdRng::seed_from_u64(0x57_49_44_45);
    for frame in &corpus {
        // Single-byte XOR at every position: always a typed error.
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            let delta = (rng.next_u32() % 255) as u8 + 1;
            bad[pos] ^= delta;
            assert!(
                decode_frame(&bad).is_err(),
                "a flipped byte at {pos} must not decode (frame len {})",
                frame.len()
            );
        }
        // Random splices and rewrites: only "no panic, typed error" is
        // guaranteed (a splice may reassemble a valid frame prefix).
        for _ in 0..64 {
            let mut bad = frame.clone();
            match rng.next_u32() % 3 {
                0 => {
                    let cut = (rng.next_u32() as usize) % (bad.len() + 1);
                    bad.truncate(cut);
                }
                1 => {
                    let extra = (rng.next_u32() as usize) % 32;
                    bad.extend(std::iter::repeat_n(0xAAu8, extra));
                }
                _ => {
                    let len = (rng.next_u32() as usize) % (MAX_PAYLOAD * 2);
                    bad[8..12].copy_from_slice(&(len as u32).to_le_bytes());
                }
            }
            let _ = decode_frame(&bad);
        }
    }
}
