//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock mean over `sample_size` batches with an adaptive
//! iterations-per-batch count — no statistics, no plots, no baselines —
//! which is enough for the relative comparisons the bench suite prints.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A bench identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration, recorded by `iter`.
    mean: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, storing the mean duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so one sample lasts >= ~1ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let mut total = Duration::ZERO;
        let mut iters: u128 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += per_batch;
        }
        self.mean = Duration::from_nanos((total.as_nanos() / iters.max(1)) as u64);
    }
}

fn humanize(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Bytes(n) => {
            let mib = n as f64 / (1024.0 * 1024.0) / mean.as_secs_f64();
            format!("  ({mib:.1} MiB/s)")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / mean.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
    });
    println!("{group}/{id:<40} {:>12}{rate}", humanize(mean));
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean: Duration::ZERO, sample_size: self.sample_size };
        f(&mut b);
        report(&self.name, &id.to_string(), b.mean, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean: Duration::ZERO, sample_size: self.sample_size };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.mean, self.throughput);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _parent: self }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean: Duration::ZERO, sample_size: 10 };
        f(&mut b);
        report("bench", &id.to_string(), b.mean, None);
        self
    }
}

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean: Duration::ZERO, sample_size: 3 };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.mean > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2).throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 7), &7, |b, n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
