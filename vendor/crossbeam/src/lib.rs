//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: [`channel`] (MPMC channels
//! with disconnect semantics, `Sender`/`Receiver` both `Send + Sync +
//! Clone`) and [`thread::scope`]. The implementation favours obvious
//! correctness over throughput — a `Mutex<VecDeque>` plus `Condvar` —
//! which is plenty for the simulator's one-transaction-at-a-time binder
//! traffic.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC channels with crossbeam-channel's disconnect semantics.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
        /// Signalled when a bounded queue drains below capacity.
        space: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = shared.capacity {
                while queue.len() >= cap {
                    if shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    queue = shared.space.wait(queue).unwrap_or_else(|e| e.into_inner());
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.ready.notify_one();
            Ok(())
        }

        /// The number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.space.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally every sender
        /// is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.space.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// The number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
            space: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` messages; senders block
    /// when it is full. `cap` of zero is treated as one (the simulator
    /// never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }
}

pub mod thread {
    //! Scoped threads over std's (stable since 1.63), with crossbeam's
    //! API shape: `spawn` closures receive the scope so they can spawn
    //! further threads, and `scope` wraps its result in `Ok`.

    /// A scope handle passed to [`scope`]'s closure and to every
    /// spawned thread's closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        std: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope,
        /// matching crossbeam's `|s| ...` / `|_| ...` call style.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.std.spawn(move || f(&scope))
        }
    }

    /// Runs a closure with a [`Scope`], joining every spawned thread
    /// before returning.
    ///
    /// # Errors
    ///
    /// Never fails; panics in scoped threads propagate as panics.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(&Scope { std: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_request_reply() {
        let (tx, rx) = unbounded::<(u32, super::channel::Sender<u32>)>();
        let server = std::thread::spawn(move || {
            while let Ok((n, reply)) = rx.recv() {
                let _ = reply.send(n * 2);
            }
        });
        for i in 0..16u32 {
            let (rtx, rrx) = bounded(1);
            tx.send((i, rtx)).unwrap();
            assert_eq!(rrx.recv(), Ok(i * 2));
        }
        drop(tx);
        server.join().unwrap();
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn scoped_threads_join() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| total.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 8);
    }
}
