//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* — `Mutex` and `RwLock` with
//! panic-free, non-poisoning guards — implemented over `std::sync`.
//! Poisoning is deliberately swallowed (`into_inner`), matching
//! parking_lot's semantics of not propagating panics through locks.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
