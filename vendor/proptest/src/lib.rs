//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests actually use: the
//! [`strategy::Strategy`] trait (`prop_map`, `boxed`), [`strategy::Just`],
//! `any::<T>()` for scalars and byte arrays, integer-range and
//! regex-subset string strategies, [`collection::vec`], `prop_oneof!`,
//! `prop_assume!`, the `prop_assert*` family, and the `proptest!` test
//! macro with `#![proptest_config]`.
//!
//! Differences from crates-io proptest, none of which the workspace
//! depends on: cases are drawn from a per-test deterministic seed, there
//! is **no shrinking** (a failing case panics with the values visible via
//! `assert!` formatting), and string strategies support only the regex
//! subset the tests use (`[class]{m,n}`, `[class]*`, `[class]+`, literal
//! strings, and `\PC*`).

#![forbid(unsafe_code)]

pub use rand;

pub mod test_runner {
    //! Test-case runner configuration.

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// FNV-1a — stable per-test seeds from the test name.
    pub fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::RngCore;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut StdRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Values with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            let mut buf = [0u8; N];
            rng.fill_bytes(&mut buf);
            buf
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates an arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Draws uniformly from `[lo, hi)`; modulo bias is irrelevant at test
    /// sample sizes.
    fn in_range(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + rng.next_u64() % (hi - lo)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Offset arithmetic keeps signed ranges correct.
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((lo as i128) + off) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // ---- regex-subset string strategies --------------------------------

    /// A parsed character class with repetition bounds.
    struct CharClass {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(pattern: &str) -> Option<CharClass> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                for c in (lo as u32)..=(hi as u32) {
                    chars.extend(char::from_u32(c));
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let suffix = &rest[close + 1..];
        let (min, max) = match suffix {
            "" => (1, 1),
            "*" => (0, 32),
            "+" => (1, 32),
            _ => {
                let body = suffix.strip_prefix('{')?.strip_suffix('}')?;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                    None => {
                        let n = body.trim().parse().ok()?;
                        (n, n)
                    }
                }
            }
        };
        Some(CharClass { chars, min, max })
    }

    /// Characters for the `\PC*` (any non-control) pattern: ASCII
    /// printable plus a few multibyte codepoints so UTF-8 boundary bugs
    /// still surface.
    const PRINTABLE_EXTRAS: &[char] = &['é', 'ß', '€', '中', '𝄞', '\u{00A0}'];

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            if let Some(stripped) = self.strip_suffix('*') {
                if stripped == "\\PC" {
                    let len = (rng.next_u64() % 64) as usize;
                    return (0..len)
                        .map(|_| {
                            let roll = rng.next_u64();
                            if roll.is_multiple_of(8) {
                                PRINTABLE_EXTRAS[(roll / 8) as usize % PRINTABLE_EXTRAS.len()]
                            } else {
                                char::from(0x20 + (roll % 0x5F) as u8)
                            }
                        })
                        .collect();
                }
            }
            if let Some(class) = parse_class(self) {
                let len = in_range(rng, class.min as u64, class.max as u64 + 1) as usize;
                return (0..len)
                    .map(|_| class.chars[(rng.next_u64() % class.chars.len() as u64) as usize])
                    .collect();
            }
            // Fallback: the pattern contains no supported metacharacters;
            // treat it as a literal.
            (*self).to_owned()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Element-count bounds for [`vec`], `lo..hi` exclusive of `hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Tuples of strategies generate tuples of values (arities 2..=6).
macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: crate::strategy::Strategy),+> crate::strategy::Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics on failure; this
/// stand-in has no shrinking, so failure reporting is `assert!`'s).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` in the case loop, so rejected draws cost nothing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `#[test] fn name(bindings in strategies)`
/// runs `cases` times with fresh draws from a per-test deterministic seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                        $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name))),
                    );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1usize..=32).generate(&mut rng);
            assert!((1..=32).contains(&w));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn char_class_patterns() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = "[a-zA-Z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()));
            let t = "[a-z0-9-]{1,30}".generate(&mut rng);
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_pattern_never_emits_control_chars() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = prop_oneof![Just("a".to_owned()), Just("b".to_owned())];
        let draws: std::collections::BTreeSet<String> =
            (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert_eq!(draws.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_runs(x in 0u8..255, data in collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x != 13);
            prop_assert_eq!(data.len(), data.len());
            prop_assert_ne!(x, 13);
        }
    }
}
