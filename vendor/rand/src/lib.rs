//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: the [`RngCore`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the crates-io StdRng
//! stream, but every consumer in this workspace only requires *seeded
//! determinism*, never a specific stream.

#![forbid(unsafe_code)]

/// A source of uniformly random bits.
pub trait RngCore {
    /// Returns 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention rand uses, so every seed gives an independent,
    /// well-mixed stream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the canonical seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
        /// Buffered upper half for `next_u32` (matches rand's behaviour of
        /// not wasting entropy, though no caller depends on it).
        carry: Option<u32>,
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        fn next(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s, carry: None }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if let Some(hi) = self.carry.take() {
                return hi;
            }
            let v = self.next();
            self.carry = Some((v >> 32) as u32);
            v as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.carry = None;
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.carry = None;
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_every_position() {
        let mut rng = StdRng::seed_from_u64(7);
        // With 33 bytes (a non-multiple of 8) the tail chunk is partial.
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        // A 33-byte all-zero draw has probability 2^-264: treat as a bug.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bit_balance_is_sane() {
        let mut rng = StdRng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64000 bits, expect ~32000 ones; allow a generous band.
        assert!((28000..36000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn next_u32_consumes_both_halves() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let w = b.next_u64();
        assert_eq!(a.next_u32() as u64, w & 0xFFFF_FFFF);
        assert_eq!(a.next_u32() as u64, w >> 32);
    }
}
